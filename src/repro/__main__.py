"""``python -m repro``: live demos and the experiment lab.

* ``python -m repro`` — the three-way swap walkthrough, honest and
  with a crash fault;
* ``python -m repro bench-smoke`` — one tiny sweep per registered
  protocol engine through :func:`repro.api.run_sweep` (the same runs
  ``pytest -m smoke`` asserts on); exits non-zero if any engine fails
  to carry the all-conforming triangle to all-Deal;
* ``python -m repro lab run|ls|show|diff|stats|merge|families|mixes|presets``
  — the :mod:`repro.lab` workload lab: expand seeded topology × adversary
  grids, execute them through the content-addressed run store (warm
  re-runs execute zero engines), inspect or compare stored runs,
  aggregate cross-sweep statistics, and merge sharded stores.
  ``python -m repro lab --help`` lists the options.
* ``python -m repro lab run --fleet N`` — drain the sweep with N
  worker processes through the claim/lease coordinator
  (:mod:`repro.fleet`); ``lab work`` joins an existing fleet store as
  one more worker, ``lab fleet status [--json]`` inspects chunk,
  lease, and worker state.
* ``python -m repro lab check`` — the static scenario verifier
  (:mod:`repro.analysis.protocol`): structural diagnostics plus
  closed-form predictions, no engine execution; ``--verify``
  cross-checks the predictions against the simulator.
* ``python -m repro lint`` — the repo's own AST lint pass
  (:mod:`repro.analysis.lint`): determinism, serve thread-safety,
  milestone-literal hygiene, and wire-schema rules over ``src/``.
* ``python -m repro serve`` — the long-lived swap service
  (:mod:`repro.serve`): HTTP scenario submissions with admission
  control, streaming milestone subscriptions, store-backed warm cache;
* ``python -m repro serve-bench`` — the E27 load generator against an
  in-process daemon: sustained scenarios/sec and p99 submit-to-settled
  latency.
"""

import sys

from repro import CrashPoint, FaultPlan, run_swap, triangle


def demo() -> int:
    print(__doc__)
    print("1. All-conforming three-way swap (Alice -> Bob -> Carol -> Alice):\n")
    result = run_swap(triangle())
    print(result.summary())
    print()
    print(
        result.trace.format_timeline(
            delta=result.spec.delta,
            kinds=["contract_published", "hashlock_unlocked", "arc_triggered"],
        )
    )

    print("\n2. The same swap with Carol halting mid-protocol:\n")
    result = run_swap(
        triangle(),
        faults=FaultPlan().crash("Carol", at_point=CrashPoint.BEFORE_PHASE_TWO),
    )
    print(result.summary())
    print("\nConforming parties stayed out of Underwater (Theorem 4.9):",
          result.conforming_acceptable())
    print("\nSee examples/ for more scenarios and benchmarks/ for the paper's figures.")
    return 0


def bench_smoke() -> int:
    from repro.api import run_sweep, smoke_sweep

    report = run_sweep(smoke_sweep(), parallel=True)
    print(report.summary())
    failed = [r.scenario.name for r in report.reports if not r.all_deal()]
    failed += [f"{f.engine}:{f.scenario.label()}" for f in report.failures]
    if failed:
        print(f"FAILED: {failed}")
        return 1
    print("OK: every engine carried its scenarios to all-Deal.")
    return 0


def serve_bench(argv: list[str]) -> int:
    """Boot an in-process daemon and measure its service envelope."""
    import argparse
    import json

    from repro.lab.store import open_store
    from repro.serve.client import BackgroundServer, run_load, sample_scenarios
    from repro.serve.service import ServiceConfig, SwapService

    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description="load-generate against an in-process repro serve daemon",
    )
    parser.add_argument("--scenarios", type=int, default=64)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-client rate limit (0 = unlimited)")
    parser.add_argument("--engine", default="herlihy")
    parser.add_argument("--store", default=":memory:")
    parser.add_argument("--json", dest="json_path", default="",
                        help="also write the results document to this path")
    args = parser.parse_args(argv)

    config = ServiceConfig(
        max_pending=args.queue_depth,
        max_concurrency=args.concurrency,
        rate=args.rate,
        default_engine=args.engine,
    )
    scenarios = sample_scenarios(args.scenarios)
    with BackgroundServer(SwapService(config, store=open_store(args.store))) as bg:
        results = run_load(
            bg.host, bg.port, scenarios, engine=args.engine, clients=args.clients
        )
        # Warm resubmission: every scenario is now stored, so a second
        # pass must be served entirely from cache (zero engines).
        before = bg.client().status()["executed"]
        warm = run_load(
            bg.host, bg.port, scenarios, engine=args.engine, clients=args.clients
        )
        results["warm"] = {
            "outcomes": warm["outcomes"],
            "throughput_per_sec": warm["throughput_per_sec"],
            "engines_executed": bg.client().status()["executed"] - before,
        }
    latency = results["latency_seconds"]
    print(
        f"serve-bench: {results['scenarios']} scenarios, "
        f"{results['clients']} client(s): "
        f"{results['throughput_per_sec']:.1f}/s sustained, "
        f"p50 {latency['p50'] * 1000:.1f}ms, p99 {latency['p99'] * 1000:.1f}ms"
    )
    print(
        f"warm resubmission: {warm['outcomes']['cached']} cached, "
        f"{results['warm']['engines_executed']} engine(s) executed, "
        f"{results['warm']['throughput_per_sec']:.1f}/s"
    )
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    if results["warm"]["engines_executed"] != 0:
        print("FAILED: warm resubmission executed an engine")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    # Unrecognised arguments fall through to the demo so the module stays
    # runnable under harnesses (runpy, pytest) that leave their own argv.
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] == "bench-smoke":
        return bench_smoke()
    if args and args[0] == "lab":
        from repro.lab.cli import main as lab_main

        return lab_main(args[1:])
    if args and args[0] == "lint":
        from repro.analysis.lint import main as lint_main

        return lint_main(args[1:])
    if args and args[0] == "serve":
        from repro.serve.http import main as serve_main

        return serve_main(args[1:])
    if args and args[0] == "serve-bench":
        return serve_bench(args[1:])
    return demo()


if __name__ == "__main__":
    code = main()
    if code:
        raise SystemExit(code)
