"""``python -m repro``: live demos and the experiment lab.

* ``python -m repro`` — the three-way swap walkthrough, honest and
  with a crash fault;
* ``python -m repro bench-smoke`` — one tiny sweep per registered
  protocol engine through :func:`repro.api.run_sweep` (the same runs
  ``pytest -m smoke`` asserts on); exits non-zero if any engine fails
  to carry the all-conforming triangle to all-Deal;
* ``python -m repro lab run|ls|show|diff|stats|merge|families|mixes|presets``
  — the :mod:`repro.lab` workload lab: expand seeded topology × adversary
  grids, execute them through the content-addressed run store (warm
  re-runs execute zero engines), inspect or compare stored runs,
  aggregate cross-sweep statistics, and merge sharded stores.
  ``python -m repro lab --help`` lists the options.
"""

import sys

from repro import CrashPoint, FaultPlan, run_swap, triangle


def demo() -> int:
    print(__doc__)
    print("1. All-conforming three-way swap (Alice -> Bob -> Carol -> Alice):\n")
    result = run_swap(triangle())
    print(result.summary())
    print()
    print(
        result.trace.format_timeline(
            delta=result.spec.delta,
            kinds=["contract_published", "hashlock_unlocked", "arc_triggered"],
        )
    )

    print("\n2. The same swap with Carol halting mid-protocol:\n")
    result = run_swap(
        triangle(),
        faults=FaultPlan().crash("Carol", at_point=CrashPoint.BEFORE_PHASE_TWO),
    )
    print(result.summary())
    print("\nConforming parties stayed out of Underwater (Theorem 4.9):",
          result.conforming_acceptable())
    print("\nSee examples/ for more scenarios and benchmarks/ for the paper's figures.")
    return 0


def bench_smoke() -> int:
    from repro.api import run_sweep, smoke_sweep

    report = run_sweep(smoke_sweep(), parallel=True)
    print(report.summary())
    failed = [r.scenario.name for r in report.reports if not r.all_deal()]
    failed += [f"{f.engine}:{f.scenario.label()}" for f in report.failures]
    if failed:
        print(f"FAILED: {failed}")
        return 1
    print("OK: every engine carried its scenarios to all-Deal.")
    return 0


def main(argv: list[str] | None = None) -> int:
    # Unrecognised arguments fall through to the demo so the module stays
    # runnable under harnesses (runpy, pytest) that leave their own argv.
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] == "bench-smoke":
        return bench_smoke()
    if args and args[0] == "lab":
        from repro.lab.cli import main as lab_main

        return lab_main(args[1:])
    return demo()


if __name__ == "__main__":
    code = main()
    if code:
        raise SystemExit(code)
