"""``python -m repro``: run the paper's three-way swap as a live demo."""

from repro import CrashPoint, FaultPlan, run_swap, triangle


def main() -> None:
    print(__doc__)
    print("1. All-conforming three-way swap (Alice -> Bob -> Carol -> Alice):\n")
    result = run_swap(triangle())
    print(result.summary())
    print()
    print(
        result.trace.format_timeline(
            delta=result.spec.delta,
            kinds=["contract_published", "hashlock_unlocked", "arc_triggered"],
        )
    )

    print("\n2. The same swap with Carol halting mid-protocol:\n")
    result = run_swap(
        triangle(),
        faults=FaultPlan().crash("Carol", at_point=CrashPoint.BEFORE_PHASE_TWO),
    )
    print(result.summary())
    print("\nConforming parties stayed out of Underwater (Theorem 4.9):",
          result.conforming_acceptable())
    print("\nSee examples/ for more scenarios and benchmarks/ for the paper's figures.")


if __name__ == "__main__":
    main()
