"""Append-only, hash-chained, tamper-evident ledgers.

The paper's model (§2.2) needs exactly three properties from a blockchain:
publishing is visible to everyone within ``Δ``, published items are
irrevocable, and stored bytes can be counted (for Theorem 4.10).  A
:class:`Ledger` provides the irrevocability and the accounting: records are
wrapped in blocks whose headers chain by SHA-256, so any retroactive
mutation is detectable by :meth:`Ledger.verify_integrity`.

Visibility timing is *not* the ledger's job — the discrete-event simulator
(:mod:`repro.sim`) delivers observations with the configured delays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.crypto.hashing import sha256
from repro.errors import LedgerError, TamperError

GENESIS_HASH = bytes(32)

_BLOCK_HEADER_BYTES = 8 + 8 + 32 + 32  # index, timestamp, prev_hash, hash


def canonical_encode(payload: dict) -> bytes:
    """Canonical JSON encoding used for hashing and size accounting.

    Bytes values are hex-encoded with a marker so encoding is injective for
    the payload shapes the library produces.
    """
    return json.dumps(_encode_value(payload), separators=(",", ":"), sort_keys=True).encode()


def _encode_value(value):
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise LedgerError(f"cannot encode {type(value).__name__} in a ledger record")


@dataclass(frozen=True)
class Record:
    """One logical entry on a ledger.

    Attributes:
        kind: Record type, e.g. ``contract_published`` or ``contract_call``.
        author: Address of the party that submitted the record.
        payload: JSON-compatible body (bytes values allowed, hex-encoded).
    """

    kind: str
    author: str
    payload: dict

    def encoded(self) -> bytes:
        """The record's canonical encoding, computed once and cached.

        A record is logically immutable from construction (the dataclass
        is frozen and the ledger never rewrites payloads), but every
        record used to be re-encoded three times on its way into a block
        — hash, block sizing, ledger accounting — which dominated the
        simulated hot path.  The cache rides on the frozen instance via
        ``object.__setattr__``; forging is still detected because a
        forged record is a *fresh* instance whose encoding is computed
        from its own (tampered) payload.
        """
        cached: bytes | None = getattr(self, "_encoded", None)
        if cached is None:
            cached = canonical_encode(
                {"kind": self.kind, "author": self.author, "payload": self.payload}
            )
            object.__setattr__(self, "_encoded", cached)
        return cached

    def encoded_size_bytes(self) -> int:
        return len(self.encoded())


@dataclass(frozen=True)
class Block:
    """A sealed block: header plus records, hash-chained to its parent."""

    index: int
    timestamp: int
    prev_hash: bytes
    records: tuple[Record, ...]
    block_hash: bytes = field(repr=False)

    @staticmethod
    def compute_hash(
        index: int, timestamp: int, prev_hash: bytes, records: tuple[Record, ...]
    ) -> bytes:
        body = b"".join(record.encoded() for record in records)
        header = (
            index.to_bytes(8, "big")
            + timestamp.to_bytes(8, "big", signed=True)
            + prev_hash
        )
        return sha256(header + body)

    def encoded_size_bytes(self) -> int:
        return _BLOCK_HEADER_BYTES + sum(r.encoded_size_bytes() for r in self.records)


class Ledger:
    """An append-only chain of blocks.

    Each :meth:`append` seals one block containing one record — a
    simplification (real chains batch) that keeps the simulator's
    publish/observe timing exact while preserving hash-chaining and
    byte-accounting semantics.  Timestamps must be non-decreasing.
    """

    def __init__(self, ledger_id: str) -> None:
        self.ledger_id = ledger_id
        self._blocks: list[Block] = []
        self._observers: list[Callable[[Block], None]] = []

    def append(self, record: Record, timestamp: int) -> Block:
        """Seal ``record`` into a new block at ``timestamp``."""
        if self._blocks and timestamp < self._blocks[-1].timestamp:
            raise LedgerError(
                f"timestamp {timestamp} is earlier than the chain tip "
                f"({self._blocks[-1].timestamp})"
            )
        index = len(self._blocks)
        prev_hash = self._blocks[-1].block_hash if self._blocks else GENESIS_HASH
        block_hash = Block.compute_hash(index, timestamp, prev_hash, (record,))
        block = Block(
            index=index,
            timestamp=timestamp,
            prev_hash=prev_hash,
            records=(record,),
            block_hash=block_hash,
        )
        self._blocks.append(block)
        for observer in self._observers:
            observer(block)
        return block

    def add_observer(self, callback: Callable[[Block], None]) -> None:
        """Register a callback fired synchronously on every new block."""
        self._observers.append(callback)

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def blocks(self) -> tuple[Block, ...]:
        return tuple(self._blocks)

    def records(self) -> list[Record]:
        return [record for block in self._blocks for record in block.records]

    def records_of_kind(self, kind: str) -> list[Record]:
        return [record for record in self.records() if record.kind == kind]

    # -- integrity and accounting ---------------------------------------------

    def verify_integrity(self) -> None:
        """Raise :class:`TamperError` if any block fails hash validation."""
        prev_hash = GENESIS_HASH
        for position, block in enumerate(self._blocks):
            if block.index != position:
                raise TamperError(
                    f"{self.ledger_id}: block at position {position} claims "
                    f"index {block.index}"
                )
            if block.prev_hash != prev_hash:
                raise TamperError(
                    f"{self.ledger_id}: block {position} does not chain to "
                    "its predecessor"
                )
            expected = Block.compute_hash(
                block.index, block.timestamp, block.prev_hash, block.records
            )
            if block.block_hash != expected:
                raise TamperError(
                    f"{self.ledger_id}: block {position} contents do not "
                    "match its hash"
                )
            prev_hash = block.block_hash

    def total_size_bytes(self) -> int:
        """Total bytes stored on this ledger (Theorem 4.10 accounting)."""
        return sum(block.encoded_size_bytes() for block in self._blocks)
