"""The multi-chain world a swap runs in.

Each arc ``(u, v)`` of the swap digraph is "a proposed asset transfer from
the arc's head to its tail *via a shared blockchain*" (§3) — so the network
instantiates one :class:`~repro.chain.blockchain.Blockchain` per arc, plus
an optional shared *broadcast* chain used by the Phase-Two optimisation
(§4.5) and by the market-clearing service as its publication medium (§4.2).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.chain.assets import Asset
from repro.chain.blockchain import Blockchain, ChainEventCallback
from repro.chain.ledger import Record
from repro.digraph.digraph import Arc, Digraph
from repro.errors import SimulationError

BROADCAST_CHAIN_ID = "broadcast"


def chain_id_for_arc(arc: Arc) -> str:
    """Stable chain identifier for the blockchain backing ``arc``."""
    head, tail = arc
    return f"chain:{head}->{tail}"


class ChainNetwork:
    """A registry of blockchains: one per swap arc plus the broadcast chain."""

    def __init__(self, include_broadcast: bool = True) -> None:
        self._chains: dict[str, Blockchain] = {}
        self._arc_chain: dict[Arc, str] = {}
        self.include_broadcast = include_broadcast
        if include_broadcast:
            self._chains[BROADCAST_CHAIN_ID] = Blockchain(BROADCAST_CHAIN_ID)

    @classmethod
    def for_digraph(cls, digraph: Digraph, include_broadcast: bool = True) -> "ChainNetwork":
        """Create one chain per arc of ``digraph``."""
        network = cls(include_broadcast=include_broadcast)
        for arc in digraph.arcs:
            network.add_arc_chain(arc)
        return network

    def add_arc_chain(self, arc: Arc) -> Blockchain:
        """Create (or return) the blockchain backing ``arc``."""
        chain_id = chain_id_for_arc(arc)
        if arc not in self._arc_chain:
            if chain_id in self._chains:
                raise SimulationError(f"chain id collision for {arc!r}")
            self._chains[chain_id] = Blockchain(chain_id)
            self._arc_chain[arc] = chain_id
        return self._chains[self._arc_chain[arc]]

    def chain_for_arc(self, arc: Arc) -> Blockchain:
        try:
            return self._chains[self._arc_chain[arc]]
        except KeyError:
            raise SimulationError(f"no chain registered for arc {arc!r}") from None

    def chain(self, chain_id: str) -> Blockchain:
        try:
            return self._chains[chain_id]
        except KeyError:
            raise SimulationError(f"no chain {chain_id!r}") from None

    @property
    def broadcast_chain(self) -> Blockchain:
        if not self.include_broadcast:
            raise SimulationError("this network was built without a broadcast chain")
        return self._chains[BROADCAST_CHAIN_ID]

    def chains(self) -> list[Blockchain]:
        return list(self._chains.values())

    def arcs(self) -> list[Arc]:
        return list(self._arc_chain)

    # -- global subscription ---------------------------------------------------

    def subscribe_all(self, callback: ChainEventCallback) -> None:
        """Fire ``callback`` for every record on every chain (runner hook)."""
        for chain in self._chains.values():
            chain.subscribe(callback)

    # -- asset helpers -----------------------------------------------------------

    def register_arc_assets(
        self,
        digraph: Digraph,
        now: int = 0,
        value_of: Callable[[Arc], int] | None = None,
    ) -> dict[Arc, Asset]:
        """Mint one asset per arc, owned by the arc's head (the payer).

        Returns the ``arc -> asset`` mapping the protocol escrows from.
        """
        assets: dict[Arc, Asset] = {}
        for arc in digraph.arcs:
            head, tail = arc
            chain = self.chain_for_arc(arc)
            asset = Asset(
                asset_id=f"asset@{head}->{tail}",
                description=f"asset {head} owes {tail}",
                value=value_of(arc) if value_of is not None else 1,
            )
            chain.register_asset(asset, owner=head, now=now)
            assets[arc] = asset
        return assets

    # -- global accounting ---------------------------------------------------------

    def total_stored_bytes(self) -> int:
        """Bytes stored across *all* blockchains (Theorem 4.10's measure)."""
        return sum(chain.stored_bytes() for chain in self._chains.values())

    def total_published_bytes(self) -> int:
        return sum(chain.published_bytes() for chain in self._chains.values())

    def total_contract_storage_bytes(self) -> int:
        return sum(chain.contract_storage_bytes() for chain in self._chains.values())

    def verify_all(self) -> None:
        """Integrity-check every ledger in the network."""
        for chain in self._chains.values():
            chain.ledger.verify_integrity()

    def ownership_snapshot(self) -> dict[str, dict[str, str]]:
        """``chain_id -> (asset_id -> owner)`` across the network."""
        return {
            chain_id: chain.assets.snapshot()
            for chain_id, chain in self._chains.items()
        }

    def all_records(self) -> list[tuple[str, Record]]:
        """Every ledger record in the network, tagged with its chain id."""
        out: list[tuple[str, Record]] = []
        for chain_id, chain in self._chains.items():
            out.extend((chain_id, record) for record in chain.records())
        return out
