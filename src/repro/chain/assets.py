"""Assets and ownership.

An :class:`Asset` is anything a blockchain tracks title to — "a unit of
cryptocurrency or an automobile title" (§2.2).  Each asset lives on exactly
one blockchain (its *native chain*, the chain of the swap arc it moves on)
and has exactly one owner at a time.  Contracts take custody by becoming
the owner (escrow); `claim`/`refund` release custody.

The :class:`AssetRegistry` enforces ownership on transfer, conserving
assets: nothing is minted or destroyed after registration, which the test
suite checks as a global invariant of every simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssetError


@dataclass(frozen=True)
class Asset:
    """A titled asset tracked on a single blockchain.

    Attributes:
        asset_id: Globally unique identifier (e.g. ``"altcoins@Alice->Bob"``).
        description: Human-readable description for traces and examples.
        value: Abstract market value, used only by outcome/payoff analysis.
    """

    asset_id: str
    description: str = ""
    value: int = 1

    def __post_init__(self) -> None:
        if not self.asset_id:
            raise AssetError("asset_id must be non-empty")
        if self.value < 0:
            raise AssetError("asset value must be non-negative")


class AssetRegistry:
    """Ownership table for the assets native to one blockchain."""

    def __init__(self, chain_id: str) -> None:
        self.chain_id = chain_id
        self._owners: dict[str, str] = {}
        self._assets: dict[str, Asset] = {}

    def register(self, asset: Asset, owner: str) -> None:
        """Mint ``asset`` with an initial ``owner``; ids must be fresh."""
        if asset.asset_id in self._assets:
            raise AssetError(f"asset {asset.asset_id!r} already registered")
        self._assets[asset.asset_id] = asset
        self._owners[asset.asset_id] = owner

    def owner(self, asset_id: str) -> str:
        try:
            return self._owners[asset_id]
        except KeyError:
            raise AssetError(f"unknown asset {asset_id!r}") from None

    def asset(self, asset_id: str) -> Asset:
        try:
            return self._assets[asset_id]
        except KeyError:
            raise AssetError(f"unknown asset {asset_id!r}") from None

    def transfer(self, asset_id: str, sender: str, recipient: str) -> None:
        """Move ownership; ``sender`` must currently own the asset."""
        current = self.owner(asset_id)
        if current != sender:
            raise AssetError(
                f"{sender} cannot transfer {asset_id!r}: owned by {current}"
            )
        self._owners[asset_id] = recipient

    def assets(self) -> list[Asset]:
        return list(self._assets.values())

    def holdings(self, owner: str) -> list[Asset]:
        """All assets currently owned by ``owner`` on this chain."""
        return [
            self._assets[asset_id]
            for asset_id, current in self._owners.items()
            if current == owner
        ]

    def snapshot(self) -> dict[str, str]:
        """A copy of the full ``asset_id -> owner`` table."""
        return dict(self._owners)
