"""Blockchain substrate: ledgers, assets, contract hosting, multi-chain."""

from repro.chain.assets import Asset, AssetRegistry
from repro.chain.blockchain import Blockchain, encoded_args_size_bytes
from repro.chain.contracts import Contract
from repro.chain.ledger import Block, Ledger, Record, canonical_encode
from repro.chain.network import BROADCAST_CHAIN_ID, ChainNetwork, chain_id_for_arc

__all__ = [
    "Asset",
    "AssetRegistry",
    "Blockchain",
    "encoded_args_size_bytes",
    "Contract",
    "Block",
    "Ledger",
    "Record",
    "canonical_encode",
    "BROADCAST_CHAIN_ID",
    "ChainNetwork",
    "chain_id_for_arc",
]
