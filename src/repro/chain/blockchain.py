"""A single simulated blockchain: ledger + assets + hosted contracts.

One :class:`Blockchain` instance backs one arc of the swap digraph (plus,
optionally, one shared broadcast chain for the Phase-Two optimisation).
It provides:

* **publication** — :meth:`publish_contract` escrows the asset into the
  contract and records the publication (irrevocable thereafter);
* **invocation** — :meth:`call` dispatches an allow-listed method on a
  hosted contract, records the transaction (success or failure) on the
  ledger, and never lets a failed call mutate state;
* **reading** — :meth:`contract_state`, :meth:`records`; the *timing* of
  who sees what when is imposed by the simulator, not here;
* **accounting** — stored bytes (Theorem 4.10) and published bytes
  (communication complexity) are tracked separately.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.chain.assets import Asset, AssetRegistry
from repro.chain.contracts import Contract
from repro.chain.ledger import Ledger, Record, canonical_encode
from repro.errors import AssetError, ContractError, ContractStateError

ChainEventCallback = Callable[["Blockchain", Record, int], None]


class Blockchain:
    """A publicly readable, tamper-proof ledger hosting contracts and assets."""

    def __init__(self, chain_id: str) -> None:
        self.chain_id = chain_id
        self.ledger = Ledger(chain_id)
        self.assets = AssetRegistry(chain_id)
        self._contracts: dict[str, Contract] = {}
        self._subscribers: list[ChainEventCallback] = []
        self._published_bytes = 0

    # -- subscription (wired to the simulator's observation delays) ----------

    def subscribe(self, callback: ChainEventCallback) -> None:
        """Register a callback fired synchronously for every new record.

        The discrete-event runner uses this to schedule each party's
        *delayed* observation; parties never subscribe directly.
        """
        self._subscribers.append(callback)

    def _record(self, record: Record, now: int) -> None:
        self.ledger.append(record, now)
        self._published_bytes += record.encoded_size_bytes()
        for callback in list(self._subscribers):
            callback(self, record, now)

    # -- assets -----------------------------------------------------------------

    def register_asset(self, asset: Asset, owner: str, now: int = 0) -> None:
        """Mint an asset onto this chain with an initial owner."""
        self.assets.register(asset, owner)
        self._record(
            Record(
                kind="asset_registered",
                author=owner,
                payload={"asset_id": asset.asset_id, "owner": owner},
            ),
            now,
        )

    def transfer_asset(self, asset_id: str, sender: str, recipient: str, now: int) -> None:
        """A plain recorded transfer (no contract): sender must own the asset.

        Used by the trust-based baseline protocols; the atomic swap itself
        only ever moves assets through contract escrow.
        """
        self.assets.transfer(asset_id, sender, recipient)
        self._record(
            Record(
                kind="asset_transfer",
                author=sender,
                payload={"asset_id": asset_id, "from": sender, "to": recipient},
            ),
            now,
        )

    def publish_data(self, kind: str, author: str, payload: dict, now: int) -> Record:
        """Publish a plain data record (no contract semantics).

        Used for the §4.5 broadcast optimisation (leaders posting secrets on
        the shared chain) and for the market-clearing service's spec
        publication.
        """
        record = Record(kind=kind, author=author, payload=payload)
        self._record(record, now)
        return record

    # -- contracts ----------------------------------------------------------------

    def publish_contract(self, contract: Contract, sender: str, now: int) -> str:
        """Publish ``contract``, escrowing its asset from ``sender``.

        The sender must own the contract's asset on this chain; ownership
        moves to the contract (escrow).  Returns the contract id.  Raises
        :class:`AssetError` (no escrow possible) or :class:`ContractError`
        (already published) without recording anything — a transaction that
        cannot pay for its escrow never makes it on-chain.
        """
        if contract.is_published:
            raise ContractError("contract instance already published")
        contract_id = f"{self.chain_id}/contract-{len(self._contracts)}"
        # Escrow first: if the sender does not own the asset this raises
        # and the publication never happens.
        self.assets.transfer(contract.asset.asset_id, sender, contract_id)
        contract.bind(self, contract_id, sender, now)
        self._contracts[contract_id] = contract
        self._record(
            Record(
                kind="contract_published",
                author=sender,
                payload={
                    "contract_id": contract_id,
                    "contract_type": type(contract).__name__,
                    "asset_id": contract.asset.asset_id,
                    "storage_bytes": contract.storage_size_bytes(),
                    "state": contract.state_view(),
                },
            ),
            now,
        )
        return contract_id

    def call(
        self,
        contract_id: str,
        method: str,
        sender: str,
        now: int,
        args: dict[str, Any] | None = None,
    ) -> Any:
        """Invoke ``method`` on a hosted contract as a recorded transaction.

        Failed calls (any :class:`ContractError`) are recorded with their
        error and re-raised; by construction contract methods validate
        before mutating, so a failed call leaves state unchanged.
        """
        args = args or {}
        contract = self.contract(contract_id)
        if method not in contract.CALLABLE:
            raise ContractError(
                f"{method!r} is not an on-chain method of {contract.describe()}"
            )
        payload: dict[str, Any] = {
            "contract_id": contract_id,
            "method": method,
            "args": args,
        }
        try:
            result = getattr(contract, method)(caller=sender, now=now, **args)
        except ContractError as error:
            payload["ok"] = False
            payload["error"] = f"{type(error).__name__}: {error}"
            self._record(Record(kind="contract_call", author=sender, payload=payload), now)
            raise
        payload["ok"] = True
        payload["state"] = contract.state_view()
        self._record(Record(kind="contract_call", author=sender, payload=payload), now)
        return result

    def contract(self, contract_id: str) -> Contract:
        try:
            return self._contracts[contract_id]
        except KeyError:
            raise ContractError(
                f"no contract {contract_id!r} on chain {self.chain_id}"
            ) from None

    def contracts(self) -> list[Contract]:
        return list(self._contracts.values())

    def contract_state(self, contract_id: str) -> dict[str, Any]:
        """Read a contract's public state (readers are free and instant;
        observation *delays* are imposed by the simulator)."""
        return self.contract(contract_id).state_view()

    def release_escrow(self, contract: Contract, recipient: str, now: int) -> None:
        """Called by a hosted contract to hand its asset to ``recipient``.

        Only the contract that holds the escrow may release it.
        """
        if contract.contract_id is None or contract.chain is not self:
            raise ContractStateError("only a hosted contract can release escrow")
        current_owner = self.assets.owner(contract.asset.asset_id)
        if current_owner != contract.contract_id:
            raise AssetError(
                f"escrow violation: {contract.contract_id} does not hold "
                f"{contract.asset.asset_id!r} (owner: {current_owner})"
            )
        self.assets.transfer(contract.asset.asset_id, contract.contract_id, recipient)
        self._record(
            Record(
                kind="asset_transfer",
                author=contract.contract_id,
                payload={
                    "asset_id": contract.asset.asset_id,
                    "from": contract.contract_id,
                    "to": recipient,
                },
            ),
            now,
        )

    # -- reading and accounting ---------------------------------------------------

    def records(self) -> list[Record]:
        return self.ledger.records()

    def stored_bytes(self) -> int:
        """Total bytes persisted on this chain (ledger blocks)."""
        return self.ledger.total_size_bytes()

    def published_bytes(self) -> int:
        """Total record bytes ever published (communication accounting)."""
        return self._published_bytes

    def contract_storage_bytes(self) -> int:
        """Long-lived contract storage only (the Theorem 4.10 measure)."""
        return sum(c.storage_size_bytes() for c in self._contracts.values())

    def __repr__(self) -> str:
        return (
            f"Blockchain({self.chain_id!r}, blocks={len(self.ledger)}, "
            f"contracts={len(self._contracts)})"
        )


def encoded_args_size_bytes(args: dict[str, Any]) -> int:
    """Size of a call's arguments in canonical encoding (for metrics)."""
    return len(canonical_encode(args))
