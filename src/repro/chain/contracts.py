"""The contract-hosting layer: publication, irrevocability, dispatch.

A smart contract here is a Python object implementing :class:`Contract`.
Once published on a :class:`~repro.chain.blockchain.Blockchain` it is
irrevocable: it cannot be removed, its declared fields cannot be replaced,
and its state evolves only through :meth:`~repro.chain.blockchain.Blockchain.call`,
which records every invocation on the ledger (the record *is* the
transaction).  This mirrors §2.2: "Once a contract is published, it is
irrevocable."

The base class is protocol-agnostic so both the paper's Swap contract
(:mod:`repro.core.contract`) and the baseline protocols' contracts plug in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from repro.chain.assets import Asset
from repro.errors import ContractError, ContractStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.chain.blockchain import Blockchain


class Contract(ABC):
    """Base class for all hosted contracts.

    Subclasses declare which methods are invokable on-chain via
    ``CALLABLE``; each such method has signature
    ``method(caller: str, now: int, **kwargs)`` and may raise
    :class:`~repro.errors.ContractError` subclasses, which the chain
    records as failed transactions (state unchanged).

    Attributes (assigned by the chain at publication):
        contract_id: Stable on-chain identifier; also the escrow owner id.
        chain: The hosting blockchain.
        published_at: Ledger timestamp of the publication block.
        creator: Address that published (and escrowed the asset).
    """

    CALLABLE: frozenset[str] = frozenset()

    def __init__(self, asset: Asset) -> None:
        self.asset = asset
        self.contract_id: str | None = None
        self.chain: "Blockchain | None" = None
        self.published_at: int | None = None
        self.creator: str | None = None
        self._halted = False

    # -- publication lifecycle -------------------------------------------------

    def bind(self, chain: "Blockchain", contract_id: str, creator: str, now: int) -> None:
        """Called exactly once by the hosting chain at publication."""
        if self.contract_id is not None:
            raise ContractError(
                f"contract already published as {self.contract_id} "
                "(contracts are irrevocable and single-use)"
            )
        self.chain = chain
        self.contract_id = contract_id
        self.creator = creator
        self.published_at = now

    @property
    def is_published(self) -> bool:
        return self.contract_id is not None

    @property
    def is_halted(self) -> bool:
        """True after the asset has been released (claimed or refunded)."""
        return self._halted

    def _require_live(self) -> None:
        if not self.is_published:
            raise ContractStateError("contract is not published")
        if self._halted:
            raise ContractStateError("contract has halted (asset released)")

    def _halt(self) -> None:
        self._halted = True

    # -- introspection ----------------------------------------------------------

    @abstractmethod
    def state_view(self) -> dict[str, Any]:
        """A JSON-compatible snapshot of public state, as a reader sees it."""

    @abstractmethod
    def storage_size_bytes(self) -> int:
        """Bytes of long-lived storage this contract occupies on-chain.

        Counted once at publication toward Theorem 4.10's space bound.
        """

    def describe(self) -> str:
        return f"{type(self).__name__}({self.contract_id or 'unpublished'})"
