"""Dynamic spec propagation (§5's final remark).

"One limitation of the swap protocol presented here is the assumption
that the swap digraph, its leaders, and their hashlocks are common
knowledge among the participants.  Future work might address constructing
and propagating this information dynamically."

This module closes the loop in the simulated setting: the market-clearing
service publishes the spec *on the broadcast chain* (§4.2 already allows
this — see :meth:`MarketClearingService.clear`), and prospective
participants reconstruct the spec purely from that on-chain record via
:func:`discover_spec`, re-validating every structural requirement (strong
connectivity, the leader set being an FVS, hashlock shape) before
committing to anything.  A party that started from nothing but the chain
and its own offer can therefore:

1. read the published spec record,
2. rebuild the :class:`~repro.core.spec.SwapSpec`,
3. run §4.2's consistency checks against its own offer
   (:func:`~repro.core.clearing.check_spec_against_offer`),
4. and only then escrow assets.

Tampered or torn records fail reconstruction loudly — reconstruction runs
the same validators the spec's constructor always enforces.
"""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.ledger import Record
from repro.core.spec import SwapSpec
from repro.crypto.keys import KeyDirectory
from repro.crypto.signatures import SignatureScheme
from repro.digraph.digraph import Digraph
from repro.errors import ClearingError

SPEC_RECORD_KIND = "swap_spec_published"


def discover_spec(
    broadcast_chain: Blockchain,
    directory: KeyDirectory,
    schemes: dict[str, SignatureScheme],
) -> SwapSpec:
    """Reconstruct the most recently published swap spec from chain data.

    ``directory`` and ``schemes`` are the observer's own (keys are
    published separately and schemes are code, not data).  Raises
    :class:`ClearingError` when no spec record exists or the record does
    not decode to a valid spec.
    """
    records = broadcast_chain.ledger.records_of_kind(SPEC_RECORD_KIND)
    if not records:
        raise ClearingError("no swap spec has been published on this chain")
    return spec_from_record(records[-1], directory, schemes)


def spec_from_record(
    record: Record,
    directory: KeyDirectory,
    schemes: dict[str, SignatureScheme],
) -> SwapSpec:
    """Decode one ``swap_spec_published`` record into a validated spec."""
    if record.kind != SPEC_RECORD_KIND:
        raise ClearingError(f"record kind {record.kind!r} is not a spec record")
    payload = record.payload
    try:
        digraph = Digraph.from_dict(payload["digraph"])
        leaders = tuple(payload["leaders"])
        hashlocks = tuple(bytes.fromhex(h) for h in payload["hashlocks"])
        start_time = int(payload["start_time"])
        delta = int(payload["delta"])
        diam = int(payload["diam"])
        timeout_slack = int(payload["timeout_slack"])
    except (KeyError, TypeError, ValueError) as error:
        raise ClearingError(f"malformed spec record: {error}") from None
    # SwapSpec.__post_init__ re-runs every structural validation (strong
    # connectivity, FVS leaders, hashlock arity, timing sanity), so a
    # tampered record cannot smuggle in an unsafe spec.
    return SwapSpec(
        digraph=digraph,
        leaders=leaders,
        hashlocks=hashlocks,
        start_time=start_time,
        delta=delta,
        diam=diam,
        timeout_slack=timeout_slack,
        directory=directory,
        schemes=schemes,
    )


def specs_match(a: SwapSpec, b: SwapSpec) -> bool:
    """Field-wise spec equality over the *published* content.

    (The directory and scheme instances are the observer's own and are
    excluded — two observers with the same key data agree on a spec even
    though their Python objects differ.)
    """
    return (
        a.digraph == b.digraph
        and a.leaders == b.leaders
        and a.hashlocks == b.hashlocks
        and a.start_time == b.start_time
        and a.delta == b.delta
        and a.diam == b.diam
        and a.timeout_slack == b.timeout_slack
    )
