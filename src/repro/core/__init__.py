"""Core protocol: the paper's contribution (§4).

The pieces, in paper order: :mod:`~repro.core.spec` (the §4.2 published
swap instance), :mod:`~repro.core.hashkey` (§4.1), :mod:`~repro.core.contract`
(Figs. 4-5), :mod:`~repro.core.pebble` (§4.4), :mod:`~repro.core.party` and
:mod:`~repro.core.protocol` (§4.5), :mod:`~repro.core.broadcast` (the §4.5
optimisation), :mod:`~repro.core.timelocks` (§4.6),
:mod:`~repro.core.clearing` (§4.2), :mod:`~repro.core.strategies`
(deviations), :mod:`~repro.core.multiswap` and :mod:`~repro.core.recurrent`
(§5 extensions).
"""

from repro.core.accountability import (
    BondSettlement,
    FaultFinding,
    FaultReport,
    attribute_faults,
    settle_bonds,
)
from repro.core.broadcast import PhaseTwoTiming, compare_broadcast, phase_two_timing
from repro.core.clearing import (
    ClearingOutcome,
    MarketClearingService,
    Offer,
    ProposedTransfer,
    check_spec_against_offer,
    match_barter,
)
from repro.core.contract import (
    SwapContract,
    expected_contract_state,
    is_correct_contract_state,
)
from repro.core.discovery import discover_spec, spec_from_record, specs_match
from repro.core.hashkey import Hashkey
from repro.core.multiswap import MultiSwapResult, run_multigraph_swap
from repro.core.party import SwapParty
from repro.core.pebble import PebbleGameResult, eager_pebble_game, lazy_pebble_game
from repro.core.protocol import (
    SwapConfig,
    SwapResult,
    SwapSimulation,
    collect_result,
    run_swap,
)
from repro.core.recurrent import (
    RecurrentOutcome,
    RecurrentRound,
    RecurrentSwapCoordinator,
)
from repro.core.spec import SwapSpec, compute_diameter_for_spec
from repro.core.strategies import (
    GreedyClaimOnlyParty,
    LastMomentUnlockParty,
    PrematureRevealParty,
    RefuseToPublishParty,
    SelectiveUnlockParty,
    WithholdSecretParty,
    WrongContractParty,
)
from repro.core.timelocks import (
    SimpleTimelockContract,
    SingleLeaderParty,
    SingleLeaderSimulation,
    SingleLeaderSpec,
    assign_timeouts,
    equal_timeouts,
    run_single_leader_swap,
    verify_gap_property,
)

__all__ = [
    "BondSettlement",
    "FaultFinding",
    "FaultReport",
    "attribute_faults",
    "settle_bonds",
    "PhaseTwoTiming",
    "compare_broadcast",
    "phase_two_timing",
    "ClearingOutcome",
    "MarketClearingService",
    "Offer",
    "ProposedTransfer",
    "check_spec_against_offer",
    "match_barter",
    "SwapContract",
    "expected_contract_state",
    "is_correct_contract_state",
    "discover_spec",
    "spec_from_record",
    "specs_match",
    "Hashkey",
    "MultiSwapResult",
    "run_multigraph_swap",
    "SwapParty",
    "PebbleGameResult",
    "eager_pebble_game",
    "lazy_pebble_game",
    "SwapConfig",
    "SwapResult",
    "SwapSimulation",
    "collect_result",
    "run_swap",
    "RecurrentOutcome",
    "RecurrentRound",
    "RecurrentSwapCoordinator",
    "SwapSpec",
    "compute_diameter_for_spec",
    "GreedyClaimOnlyParty",
    "LastMomentUnlockParty",
    "PrematureRevealParty",
    "RefuseToPublishParty",
    "SelectiveUnlockParty",
    "WithholdSecretParty",
    "WrongContractParty",
    "SimpleTimelockContract",
    "SingleLeaderParty",
    "SingleLeaderSimulation",
    "SingleLeaderSpec",
    "assign_timeouts",
    "equal_timeouts",
    "run_single_leader_swap",
    "verify_gap_property",
]
