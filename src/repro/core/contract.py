"""The Swap contract of Figures 4 and 5.

One :class:`SwapContract` is published per arc ``(party, counterparty)``.
Its long-lived state mirrors Fig. 4: the escrowed asset, (a copy of) the
swap digraph and leader vector, the two endpoint addresses, the hashlock
vector, the per-lock final-timeout vector, the ``unlocked`` flags and the
starting time.  Its three functions mirror Fig. 5:

* ``unlock(i, s, p, σ)`` — counterparty-only; validates deadline, secret,
  path and signature chain, then marks hashlock ``i`` unlocked;
* ``refund()`` — party-only; refunds once some hashlock is still locked
  and every hashkey that could open it has timed out;
* ``claim()`` — counterparty-only; transfers the asset once every
  hashlock is unlocked.

``claim`` and ``refund`` are mutually exclusive by construction: refund
requires a locked hashlock, claim requires none.
"""

from __future__ import annotations

from typing import Any

from repro.chain.assets import Asset
from repro.chain.contracts import Contract
from repro.core.hashkey import Hashkey
from repro.core.spec import SwapSpec
from repro.digraph.digraph import Arc
from repro.errors import (
    AuthorizationError,
    ContractStateError,
    InvalidHashkeyError,
)


class SwapContract(Contract):
    """The hashed-timelock swap contract (Figs. 4-5), hosted on one chain."""

    CALLABLE = frozenset({"unlock", "refund", "claim"})

    def __init__(self, spec: SwapSpec, arc: Arc, asset: Asset) -> None:
        super().__init__(asset)
        head, tail = arc
        if not spec.digraph.has_arc(head, tail):
            raise ContractStateError(f"{arc!r} is not an arc of the swap digraph")
        self.spec = spec
        self.arc: Arc = arc
        self.party = head
        self.counterparty = tail
        self.unlocked: list[bool] = [False] * spec.lock_count()
        self.unlock_times: list[int | None] = [None] * spec.lock_count()
        self.unlock_hashkeys: list[Hashkey | None] = [None] * spec.lock_count()
        self.claimed = False
        self.refunded = False

    # -- Fig. 5 line 26: unlock ---------------------------------------------------

    def unlock(self, caller: str, now: int, **args: Any) -> bool:
        """Unlock one hashlock with a hashkey; idempotent when already open.

        ``args`` carry the wire-format hashkey (see
        :meth:`repro.core.hashkey.Hashkey.to_args`).  Returns True when the
        hashlock is (now) unlocked; raises on any failed check so the chain
        records the reverted transaction.
        """
        if caller != self.counterparty:
            raise AuthorizationError(
                f"unlock is counterparty-only ({self.counterparty}); "
                f"called by {caller}"
            )
        self._require_live()
        try:
            hashkey = Hashkey.from_args(args)
        except (KeyError, TypeError) as error:
            raise InvalidHashkeyError(f"malformed hashkey arguments: {error}") from None
        if self.unlocked[hashkey.lock_index]:
            return True
        hashkey.verify(self.spec, self.counterparty, now)
        self.unlocked[hashkey.lock_index] = True
        self.unlock_times[hashkey.lock_index] = now
        self.unlock_hashkeys[hashkey.lock_index] = hashkey
        return True

    # -- Fig. 5 line 35: refund ------------------------------------------------------

    def refund(self, caller: str, now: int) -> bool:
        """Refund the asset to the party once the contract can never trigger.

        Refundable iff some hashlock is still locked and all of its
        possible hashkeys have timed out (§4.1's hashlock timeout; see
        DESIGN.md §2 for the reading of Fig. 5 line 37).
        """
        if caller != self.party:
            raise AuthorizationError(
                f"refund is party-only ({self.party}); called by {caller}"
            )
        self._require_live()
        if not self._refundable(now):
            raise ContractStateError(
                "refund unavailable: no hashlock is both locked and timed out"
            )
        assert self.chain is not None
        self.refunded = True
        self._halt()
        self.chain.release_escrow(self, self.party, now)
        return True

    def _refundable(self, now: int) -> bool:
        for index, is_open in enumerate(self.unlocked):
            if is_open:
                continue
            if now >= self.spec.lock_final_timeout(self.arc, index):
                return True
        return False

    # -- Fig. 5 line 42: claim ----------------------------------------------------------

    def claim(self, caller: str, now: int) -> bool:
        """Transfer the asset to the counterparty once fully unlocked."""
        if caller != self.counterparty:
            raise AuthorizationError(
                f"claim is counterparty-only ({self.counterparty}); "
                f"called by {caller}"
            )
        self._require_live()
        if not all(self.unlocked):
            locked = [i for i, open_ in enumerate(self.unlocked) if not open_]
            raise ContractStateError(f"hashlocks still locked: {locked}")
        assert self.chain is not None
        self.claimed = True
        self._halt()
        self.chain.release_escrow(self, self.counterparty, now)
        return True

    # -- state of the world ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """The paper's "arc was triggered": the transfer happened."""
        return self.claimed

    def all_unlocked(self) -> bool:
        return all(self.unlocked)

    def revealed_hashkey(self, lock_index: int) -> Hashkey | None:
        """The hashkey that opened ``lock_index``, visible to all observers.

        Secrets revealed in unlock transactions are public — this is the
        channel Phase Two's eager propagation reads from.
        """
        return self.unlock_hashkeys[lock_index]

    def state_view(self) -> dict[str, Any]:
        return {
            "arc": list(self.arc),
            "party": self.party,
            "counterparty": self.counterparty,
            "asset_id": self.asset.asset_id,
            "hashlocks": [h.hex() for h in self.spec.hashlocks],
            "leaders": list(self.spec.leaders),
            "start_time": self.spec.start_time,
            "delta": self.spec.delta,
            "diam": self.spec.diam,
            "timeout_slack": self.spec.timeout_slack,
            "unlocked": list(self.unlocked),
            "claimed": self.claimed,
            "refunded": self.refunded,
            "halted": self.is_halted,
        }

    def storage_size_bytes(self) -> int:
        """Fig. 4's long-lived fields, in bytes (Theorem 4.10 accounting).

        Dominated by the per-contract copy of the digraph — the source of
        the ``O(|A|^2)`` total across ``|A|`` contracts.
        """
        endpoint_bytes = len(self.party.encode()) + len(self.counterparty.encode())
        asset_bytes = len(self.asset.asset_id.encode())
        flags = len(self.unlocked)
        return (
            self.spec.stored_fields_size_bytes()
            + endpoint_bytes
            + asset_bytes
            + flags
        )


def expected_contract_state(spec: SwapSpec, arc: Arc, asset_id: str) -> dict[str, Any]:
    """What a *correct* freshly published contract for ``arc`` looks like.

    §4.5: each party "verifies that contract is a correct swap contract,
    and abandons the protocol otherwise".  Parties compare a published
    contract's state view against this template (ignoring the mutable
    fields).
    """
    head, tail = arc
    return {
        "arc": [head, tail],
        "party": head,
        "counterparty": tail,
        "asset_id": asset_id,
        "hashlocks": [h.hex() for h in spec.hashlocks],
        "leaders": list(spec.leaders),
        "start_time": spec.start_time,
        "delta": spec.delta,
        "diam": spec.diam,
        "timeout_slack": spec.timeout_slack,
    }


def is_correct_contract_state(
    state: dict[str, Any], spec: SwapSpec, arc: Arc, asset_id: str
) -> bool:
    """Does a published contract's state match the spec for ``arc``?"""
    template = expected_contract_state(spec, arc, asset_id)
    return all(state.get(key) == value for key, value in template.items())
