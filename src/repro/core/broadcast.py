"""The Phase-Two broadcast optimisation (§4.5), as a measurable feature.

"There is a simple optimization that ensures that Phase Two completes in
constant time when all parties conform to the protocol.  We use a shared
blockchain ... as a broadcast medium.  Each leader publishes its secret
on the shared blockchain, and each follower monitors that blockchain,
triggering its entering arcs when it learns the secret.  (Logically, we
create an arc from each follower directly to that leader.)  Unfortunately
... it cannot replace [Phase Two], because a deviating leader might
refrain from publishing the secret on that blockchain, but publish it on
others."

The mechanics live inside the core protocol (``SwapConfig.use_broadcast``
turns them on; parties both broadcast *and* run the normal relay, exactly
because the broadcast cannot be relied upon).  This module provides the
measurement helpers bench E14 uses to show the effect: Phase-Two latency
becomes (almost) independent of ``diam(D)`` with the broadcast enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import SwapConfig, SwapResult, run_swap
from repro.digraph.digraph import Digraph
from repro.sim import trace as tr


@dataclass(frozen=True)
class PhaseTwoTiming:
    """Phase-Two latency extracted from one run's trace."""

    phase_two_start: int
    """When the first leader began disseminating (first phase-2 marker)."""
    completion: int
    """When the last arc triggered."""

    @property
    def duration(self) -> int:
        return self.completion - self.phase_two_start


def phase_two_timing(result: SwapResult) -> PhaseTwoTiming:
    """Measure Phase Two from a completed all-conforming run."""
    starts = [e.time for e in result.trace.events(tr.PHASE_STARTED)]
    completion = result.completion_time
    if not starts or completion is None:
        raise ValueError("run did not reach (or finish) Phase Two")
    return PhaseTwoTiming(phase_two_start=min(starts), completion=completion)


def compare_broadcast(
    digraph: Digraph, config: SwapConfig | None = None
) -> tuple[PhaseTwoTiming, PhaseTwoTiming]:
    """Run the same swap with and without the broadcast optimisation.

    Returns ``(without, with)`` Phase-Two timings; both runs must end
    all-Deal or a :class:`ValueError` propagates.
    """
    base = config or SwapConfig()
    without = run_swap(digraph, config=_with_broadcast(base, False))
    with_bc = run_swap(digraph, config=_with_broadcast(base, True))
    if not (without.all_deal() and with_bc.all_deal()):
        raise ValueError("comparison requires both runs to complete")
    return phase_two_timing(without), phase_two_timing(with_bc)


def _with_broadcast(config: SwapConfig, enabled: bool) -> SwapConfig:
    return SwapConfig(
        delta=config.delta,
        timeout_slack=config.timeout_slack,
        scheme_name=config.scheme_name,
        start_time=config.start_time,
        use_broadcast=enabled,
        reaction_fraction=config.reaction_fraction,
        action_fraction=config.action_fraction,
        seed=config.seed,
        exact_limit=config.exact_limit,
        diam_override=config.diam_override,
    )
