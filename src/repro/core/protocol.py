"""End-to-end swap execution: build, wire, run, classify.

:class:`SwapSimulation` is a thin configuration of the shared
:class:`repro.sim.harness.SimulationHarness`: it provisions what is
specific to the hashkey protocol — leaders, keys, secrets, the §4.2
spec, and one :class:`SwapParty` per vertex — while the harness owns the
chains, the observation wiring, the timing-model profiles, and the
run-to-quiescence loop.  The result is a :class:`SwapResult` with the
triggered/refunded arc sets, per-party outcomes (Fig. 3), timing, and
byte-level metrics for the complexity theorems.

Usage::

    sim = SwapSimulation(triangle())
    result = sim.run()
    assert result.all_deal()

Deviations are injected via ``faults`` (crash schedules) and
``strategies`` (deviating party classes from :mod:`repro.core.strategies`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.outcomes import (
    ACCEPTABLE_OUTCOMES,
    Outcome,
    classify_all,
)
from repro.chain.assets import Asset
from repro.chain.network import ChainNetwork
from repro.core.party import SwapParty
from repro.core.spec import SwapSpec, compute_diameter_for_spec
from repro.crypto.hashing import hash_secret
from repro.crypto.signatures import DEFAULT_SCHEME_NAME, get_scheme
from repro.digraph.digraph import Arc, Digraph, Vertex
from repro.digraph.feedback import feedback_vertex_set
from repro.digraph.paths import EXACT_LONGEST_PATH_LIMIT
from repro.errors import SignatureError, SimulationError
from repro.sim import trace as tr
from repro.sim.clock import DEFAULT_DELTA
from repro.sim.faults import FaultPlan
from repro.sim.harness import (
    SimulationHarness,
    derive_secret,
    provision_keypairs,
)
from repro.sim.process import (
    DEFAULT_ACTION_FRACTION,
    DEFAULT_REACTION_FRACTION,
    ReactionProfile,
)
from repro.sim.trace import Trace

StrategySpec = type[SwapParty] | tuple[type[SwapParty], dict[str, Any]]


@dataclass(frozen=True)
class SwapConfig:
    """Tunable parameters of a swap simulation.

    Defaults reproduce the paper's setting: strict Fig. 5 deadlines
    (``timeout_slack = 0``) with conforming parties whose observe+act round
    trip is ``0.45·Δ`` (see :mod:`repro.sim.process`).
    """

    delta: int = DEFAULT_DELTA
    timeout_slack: int = 0
    scheme_name: str = DEFAULT_SCHEME_NAME
    start_time: int | None = None
    """Protocol start ``T``; defaults to ``delta`` (§4.2: "at least Δ in
    the future")."""
    use_broadcast: bool = False
    """Enable the §4.5 Phase-Two broadcast optimisation."""
    reaction_fraction: float = DEFAULT_REACTION_FRACTION
    action_fraction: float = DEFAULT_ACTION_FRACTION
    seed: int = 7
    exact_limit: int = EXACT_LONGEST_PATH_LIMIT
    diam_override: int | None = None
    """Force a ``diam`` value (safe if >= the true diameter)."""
    timing: Any = None
    """Timing-model spec (``None``/``"uniform"``/``"jittered"``/
    ``"stragglers"``/``"adaptive-stragglers"`` or a
    ``{"kind": ..., **params}`` dict) — see :mod:`repro.sim.timing`.
    ``None`` keeps the historical uniform profile, making old configs
    behave identically."""
    chain_delays: Any = None
    """Per-chain confirmation lag: ``{"head->tail" | "broadcast": ticks}``
    added to every observation of that chain's records (the chain-side
    Δ).  ``None``/empty keeps the historical instant-confirmation
    behaviour."""

    def resolved_start(self) -> int:
        return self.start_time if self.start_time is not None else self.delta


@dataclass
class SwapResult:
    """Everything observable after a swap simulation has quiesced."""

    spec: SwapSpec
    config: SwapConfig
    network: ChainNetwork
    trace: Trace
    parties: dict[Vertex, SwapParty]
    conforming: frozenset[Vertex]
    triggered: frozenset[Arc]
    refunded: frozenset[Arc]
    stuck_in_escrow: frozenset[Arc]
    outcomes: dict[Vertex, Outcome]
    events_fired: int

    # -- headline predicates -----------------------------------------------------

    def all_deal(self) -> bool:
        """Did every party end with Deal (the all-conforming guarantee)?"""
        return all(o is Outcome.DEAL for o in self.outcomes.values())

    def conforming_acceptable(self) -> bool:
        """Theorem 4.9: no conforming party may end Underwater."""
        return all(
            self.outcomes[v] in ACCEPTABLE_OUTCOMES for v in self.conforming
        )

    def underwater_parties(self) -> set[Vertex]:
        return {v for v, o in self.outcomes.items() if o is Outcome.UNDERWATER}

    # -- timing ---------------------------------------------------------------------

    @property
    def completion_time(self) -> int | None:
        """When the last arc triggered (None if nothing triggered)."""
        return self.trace.last_time(tr.ARC_TRIGGERED)

    @property
    def phase_one_complete_time(self) -> int | None:
        """When the last contract was published."""
        return self.trace.last_time(tr.CONTRACT_PUBLISHED)

    def within_time_bound(self) -> bool:
        """Theorem 4.7: all triggers by ``start + 2·diam·Δ`` (+ slack)."""
        done = self.completion_time
        return done is not None and done <= self.spec.phase_two_bound()

    # -- space / communication metrics -------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        return self.network.total_stored_bytes()

    @property
    def contract_storage_bytes(self) -> int:
        return self.network.total_contract_storage_bytes()

    @property
    def published_bytes(self) -> int:
        return self.network.total_published_bytes()

    @property
    def unlock_calls(self) -> int:
        return self.trace.count(tr.HASHLOCK_UNLOCKED)

    def assets_conserved(self) -> bool:
        """Every arc's asset is owned by its head, its tail, or its escrow."""
        for arc in self.spec.digraph.arcs:
            head, tail = arc
            chain = self.network.chain_for_arc(arc)
            owner = chain.assets.owner(f"asset@{head}->{tail}")
            if owner not in {head, tail} and not owner.startswith(chain.chain_id):
                return False
        return True

    def summary(self) -> str:
        lines = [
            f"digraph: |V|={len(self.spec.digraph.vertices)} "
            f"|A|={self.spec.digraph.arc_count()} diam={self.spec.diam} "
            f"leaders={list(self.spec.leaders)}",
            f"triggered: {len(self.triggered)}/{self.spec.digraph.arc_count()} "
            f"refunded: {len(self.refunded)} stuck: {len(self.stuck_in_escrow)}",
            f"completion: {self.completion_time} "
            f"(bound {self.spec.phase_two_bound()})",
            "outcomes: "
            + ", ".join(f"{v}={o.value}" for v, o in sorted(self.outcomes.items())),
        ]
        return "\n".join(lines)


class SwapSimulation:
    """Builds and runs one atomic cross-chain swap."""

    def __init__(
        self,
        digraph: Digraph,
        leaders: tuple[Vertex, ...] | list[Vertex] | None = None,
        config: SwapConfig | None = None,
        faults: FaultPlan | None = None,
        strategies: dict[Vertex, StrategySpec] | None = None,
        profiles: dict[Vertex, ReactionProfile] | None = None,
        asset_values: dict[Arc, int] | None = None,
    ) -> None:
        self.config = config or SwapConfig()
        self.faults = faults or FaultPlan.none()
        self.strategies = strategies or {}
        self.harness = SimulationHarness.for_config(
            digraph,
            self.config,
            include_broadcast=True,
            asset_values=asset_values,
            connectivity_message=(
                "SwapSimulation requires a strongly connected digraph "
                "(Theorem 3.5; see repro.analysis.attacks for the "
                "impossibility constructions)"
            ),
        )
        self.digraph = digraph
        self.network = self.harness.network
        self.assets: dict[Arc, Asset] = self.harness.assets
        self.scheduler = self.harness.scheduler
        self.trace: Trace = self.harness.trace

        for vertex in self.strategies:
            if not digraph.has_vertex(vertex):
                raise SimulationError(f"strategy for unknown party {vertex!r}")
        for vertex in self.faults.crashes:
            if not digraph.has_vertex(vertex):
                raise SimulationError(f"fault for unknown party {vertex!r}")

        # -- leaders ---------------------------------------------------------
        if leaders is None:
            chosen = feedback_vertex_set(digraph, exact_limit=self.config.exact_limit)
            ordered = tuple(v for v in digraph.vertices if v in chosen)
        else:
            ordered = tuple(leaders)
        self.leaders = ordered

        # -- keys and secrets (deterministic in the seed) ----------------------
        scheme = get_scheme(self.config.scheme_name)
        if scheme.name == "lamport" and len(self.leaders) > 1:
            raise SignatureError(
                "Lamport keys are one-time, but a multi-leader swap makes "
                "each party sign one hashkey extension per lock; use a "
                "multi-use scheme (ecdsa-secp256k1 or hmac-registry) or a "
                "single-leader digraph"
            )
        self.scheme = scheme
        directory, self.keypairs = provision_keypairs(
            scheme, digraph.vertices, self.config.seed
        )
        self.secrets: dict[Vertex, bytes] = {
            leader: derive_secret("secret", self.config.seed, leader)
            for leader in self.leaders
        }
        hashlocks = tuple(hash_secret(self.secrets[l]) for l in self.leaders)

        # -- the published spec -------------------------------------------------
        diam = (
            self.config.diam_override
            if self.config.diam_override is not None
            else compute_diameter_for_spec(digraph, self.config.exact_limit)
        )
        self.spec = SwapSpec(
            digraph=digraph,
            leaders=self.leaders,
            hashlocks=hashlocks,
            start_time=self.config.resolved_start(),
            delta=self.config.delta,
            diam=diam,
            timeout_slack=self.config.timeout_slack,
            directory=directory,
            schemes={scheme.name: scheme},
            broadcast_unlock_enabled=self.config.use_broadcast,
        )

        # -- parties (profiles come from the scenario's timing model) ---------
        explicit_profiles = profiles or {}

        def build_party(vertex: Vertex, profile: ReactionProfile) -> SwapParty:
            cls, extra = self._resolve_strategy(vertex)
            return cls(
                keypair=self.keypairs[vertex],
                spec=self.spec,
                network=self.network,
                assets=self.assets,
                trace=self.trace,
                scheduler=self.scheduler,
                profile=explicit_profiles.get(vertex, profile),
                secret=self.secrets.get(vertex),
                use_broadcast=self.config.use_broadcast,
                **extra,
            )

        self.parties: dict[Vertex, SwapParty] = self.harness.build_parties(build_party)
        self.harness.install_faults(self.faults)
        self.harness.wire_observations(broadcast_to_all=True)
        self._ran = False

    # -- construction helpers --------------------------------------------------------

    def _resolve_strategy(self, vertex: Vertex) -> tuple[type[SwapParty], dict[str, Any]]:
        entry = self.strategies.get(vertex)
        if entry is None:
            return SwapParty, {}
        if isinstance(entry, tuple):
            cls, extra = entry
            return cls, dict(extra)
        return entry, {}

    # -- running ------------------------------------------------------------------------

    def prepared(self):
        """``(harness, start_time, finalize)`` for the execution-session
        layer (:mod:`repro.api.execution`): the session drives the
        harness itself and calls ``finalize(events_fired)`` once
        quiesced."""
        return self.harness, self.spec.start_time, self._collect

    def run(self) -> SwapResult:
        """Run to quiescence and classify the outcome."""
        if self._ran:
            raise SimulationError("a SwapSimulation instance runs once")
        self._ran = True
        events = self.harness.run_to_quiescence(self.spec.start_time)
        return self._collect(events)

    def _collect(self, events_fired: int) -> SwapResult:
        conforming = frozenset(
            v
            for v in self.digraph.vertices
            if type(self.parties[v]) is SwapParty and v not in self.faults.crashes
        )
        return self.harness.collect(
            spec=self.spec,
            config=self.config,
            conforming=conforming,
            events_fired=events_fired,
        )


def collect_result(
    spec: Any,
    config: SwapConfig,
    network: ChainNetwork,
    trace: Trace,
    parties: dict[Vertex, Any],
    conforming: frozenset[Vertex],
    events_fired: int,
) -> SwapResult:
    """Derive a :class:`SwapResult` from final chain state (ground truth).

    Shared by the general runner, the §4.6 single-leader runner, and the
    baseline runners — an arc is *triggered* iff its asset ended up owned
    by the arc's tail, regardless of which contract type moved it.
    """
    triggered: set[Arc] = set()
    refunded: set[Arc] = set()
    stuck: set[Arc] = set()
    for arc in spec.digraph.arcs:
        head, tail = arc
        chain = network.chain_for_arc(arc)
        owner = chain.assets.owner(f"asset@{head}->{tail}")
        if owner == tail:
            triggered.add(arc)
        elif owner.startswith(chain.chain_id):
            stuck.add(arc)
        elif owner == head and any(
            getattr(c, "refunded", False) for c in chain.contracts()
        ):
            refunded.add(arc)

    outcomes = classify_all(spec.digraph, triggered)
    return SwapResult(
        spec=spec,
        config=config,
        network=network,
        trace=trace,
        parties=parties,
        conforming=conforming,
        triggered=frozenset(triggered),
        refunded=frozenset(refunded),
        stuck_in_escrow=frozenset(stuck),
        outcomes=outcomes,
        events_fired=events_fired,
    )


def run_swap(
    digraph: Digraph,
    leaders: tuple[Vertex, ...] | list[Vertex] | None = None,
    config: SwapConfig | None = None,
    faults: FaultPlan | None = None,
    strategies: dict[Vertex, StrategySpec] | None = None,
    profiles: dict[Vertex, ReactionProfile] | None = None,
    asset_values: dict[Arc, int] | None = None,
) -> SwapResult:
    """One-call convenience wrapper: build a :class:`SwapSimulation`, run it."""
    return SwapSimulation(
        digraph,
        leaders=leaders,
        config=config,
        faults=faults,
        strategies=strategies,
        profiles=profiles,
        asset_values=asset_values,
    ).run()
