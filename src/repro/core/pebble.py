"""The lazy and eager pebble games of §4.4.

Both games run on a strongly connected digraph; the protocol analysis maps
Phase One to the *lazy* game on ``D`` (contracts propagate from the
leaders) and each secret's Phase-Two dissemination to the *eager* game on
``D^T`` (hashkeys flow against the arcs).  The games' round counts bound
the protocol's time complexity (Lemmas 4.1-4.3, Corollary 4.4): every arc
is pebbled within ``diam(D)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.digraph.digraph import Arc, Digraph, Vertex
from repro.digraph.feedback import require_feedback_vertex_set
from repro.digraph.paths import is_strongly_connected
from repro.errors import DigraphError, NotStronglyConnectedError


@dataclass(frozen=True)
class PebbleGameResult:
    """Outcome of a pebble game run.

    Attributes:
        rounds: ``rounds[k]`` is the set of arcs first pebbled in round
            ``k`` (round 0 is the initial placement).
        complete: Whether every arc ended up pebbled (Lemmas 4.1/4.2 say
            this always holds under the stated preconditions).
    """

    rounds: tuple[frozenset[Arc], ...]
    complete: bool

    @property
    def round_count(self) -> int:
        """Rounds *after* the initial placement — the Lemma 4.3 measure."""
        return len(self.rounds) - 1

    def pebbled(self) -> set[Arc]:
        out: set[Arc] = set()
        for arcs in self.rounds:
            out |= arcs
        return out

    def round_of(self, arc: Arc) -> int | None:
        for index, arcs in enumerate(self.rounds):
            if arc in arcs:
                return index
        return None


def lazy_pebble_game(
    digraph: Digraph,
    leaders: set[Vertex] | frozenset[Vertex],
    require_preconditions: bool = True,
) -> PebbleGameResult:
    """§4.4's lazy game: Phase One's contract propagation, abstractly.

    Round 0 pebbles the arcs leaving each leader.  Each later round pebbles
    the arcs leaving every vertex whose entering arcs are all pebbled.
    Requires strong connectivity and ``leaders`` to be a feedback vertex
    set — the exact preconditions of Lemma 4.1.  Pass
    ``require_preconditions=False`` to watch the game *stall* when the
    preconditions fail (the Theorem 4.12 deadlock demonstration).
    """
    for leader in leaders:
        if not digraph.has_vertex(leader):
            raise DigraphError(f"unknown leader {leader!r}")
    if require_preconditions:
        if not is_strongly_connected(digraph):
            raise NotStronglyConnectedError(
                "the lazy game assumes strong connectivity"
            )
        require_feedback_vertex_set(digraph, set(leaders))

    pebbled: set[Arc] = set()
    initial = {arc for leader in leaders for arc in digraph.out_arcs(leader)}
    pebbled |= initial
    rounds: list[frozenset[Arc]] = [frozenset(initial)]

    while True:
        new_arcs: set[Arc] = set()
        for v in digraph.vertices:
            if all(arc in pebbled for arc in digraph.in_arcs(v)):
                for arc in digraph.out_arcs(v):
                    if arc not in pebbled:
                        new_arcs.add(arc)
        if not new_arcs:
            break
        pebbled |= new_arcs
        rounds.append(frozenset(new_arcs))

    return PebbleGameResult(
        rounds=tuple(rounds), complete=len(pebbled) == digraph.arc_count()
    )


def eager_pebble_game(digraph: Digraph, start: Vertex) -> PebbleGameResult:
    """§4.4's eager game: one secret's Phase-Two dissemination, abstractly.

    A pebble starts on vertex ``start``; round 0 pebbles the arcs leaving
    ``start``, and each later round pebbles the arcs leaving every vertex
    with *any* pebbled entering arc.  Requires strong connectivity
    (Lemma 4.2's precondition).  Note the protocol runs this game on
    ``D^T``: pass the transpose when modelling secret flow.
    """
    if not digraph.has_vertex(start):
        raise DigraphError(f"unknown start vertex {start!r}")
    if not is_strongly_connected(digraph):
        raise NotStronglyConnectedError("the eager game assumes strong connectivity")

    pebbled: set[Arc] = set(digraph.out_arcs(start))
    rounds: list[frozenset[Arc]] = [frozenset(pebbled)]

    while True:
        new_arcs: set[Arc] = set()
        for v in digraph.vertices:
            if any(arc in pebbled for arc in digraph.in_arcs(v)):
                for arc in digraph.out_arcs(v):
                    if arc not in pebbled:
                        new_arcs.add(arc)
        if not new_arcs:
            break
        pebbled |= new_arcs
        rounds.append(frozenset(new_arcs))

    return PebbleGameResult(
        rounds=tuple(rounds), complete=len(pebbled) == digraph.arc_count()
    )
