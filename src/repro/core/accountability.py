"""Fault attribution and bonds: the §5 denial-of-service remark, built.

"The swap protocol is still vulnerable to a weak denial-of-service attack
where an adversarial party repeatedly proposes an attractive swap, and
then fails to complete the protocol ... We leave for future work the
question whether one could require parties to post bonds, and following a
failed swap, examine the blockchains to determine who was at fault (by
failing to execute an enabled transition)."

This module answers that question for the simulated setting:

* :func:`attribute_faults` performs the post-mortem: using only
  chain-visible evidence (published contract states, unlock transactions
  and their timestamps) plus the common-knowledge spec, it names every
  party that failed to execute an *enabled* transition — publishing a
  contract whose preconditions were met, revealing a secret it provably
  held in time, or publishing an incorrect contract in the first place.
  Conforming abandonment (a party that saw an incorrect contract) is
  excused, exactly as §4.5 prescribes.

* :func:`settle_bonds` turns findings into incentives: every party posts
  a bond on a shared bond chain before the swap; after a failed swap the
  attributed parties forfeit their bonds, which are split among the
  conforming parties the failure touched.  A party that never misbehaves
  always gets its bond back — attribution never blames a conforming
  party, which the test suite checks across the full fault/strategy
  matrix.

The analysis is deliberately conservative (it only blames on evidence
every observer can verify), so a colluding party that *was never enabled*
— e.g. one whose own counterparty stalled first — is not blamed even if
it intended mischief.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.contract import SwapContract, is_correct_contract_state
from repro.core.protocol import SwapResult
from repro.analysis.outcomes import Outcome
from repro.digraph.digraph import Arc, Vertex


@dataclass(frozen=True)
class FaultFinding:
    """One attributable protocol violation, with chain-visible evidence."""

    party: Vertex
    kind: str
    arc: Arc | None
    evidence: str

    UNPUBLISHED = "unpublished_enabled_contract"
    INCORRECT_CONTRACT = "published_incorrect_contract"
    WITHHELD_SECRET = "withheld_own_secret"
    WITHHELD_RELAY = "withheld_learned_secret"


@dataclass
class FaultReport:
    """All findings for one failed (or succeeded) swap."""

    findings: list[FaultFinding] = field(default_factory=list)

    def faulty_parties(self) -> set[Vertex]:
        return {f.party for f in self.findings}

    def findings_for(self, party: Vertex) -> list[FaultFinding]:
        return [f for f in self.findings if f.party == party]

    def __len__(self) -> int:
        return len(self.findings)


def attribute_faults(result: SwapResult) -> FaultReport:
    """Examine final chain state and name every enabled-but-skipped move.

    Works purely from what any observer can read back off the chains:
    which arcs carry (correct) contracts and when, and which hashlocks
    were opened when and with what paths.
    """
    spec = result.spec
    digraph = spec.digraph
    report = FaultReport()

    contract_state = _collect_contracts(result)
    publish_times = result.trace.times_by_arc("contract_published")

    correct_arcs = {
        arc for arc, (contract, _cid) in contract_state.items()
        if is_correct_contract_state(
            contract.state_view(), spec, arc, f"asset@{arc[0]}->{arc[1]}"
        )
    }
    incorrect_arcs = set(contract_state) - correct_arcs

    # Rule 0: publishing an incorrect contract is itself a fault.
    for arc in sorted(incorrect_arcs):
        report.findings.append(
            FaultFinding(
                party=arc[0],
                kind=FaultFinding.INCORRECT_CONTRACT,
                arc=arc,
                evidence=(
                    f"contract on {arc[0]}->{arc[1]} does not match the "
                    "published spec (wrong hashlocks/fields)"
                ),
            )
        )

    # A party excused by conforming abandonment: it saw an incorrect
    # contract on one of its entering arcs.
    excused = {
        v for v in digraph.vertices
        if any(arc in incorrect_arcs for arc in digraph.in_arcs(v))
    }

    # Rule 1 (Phase One): every leaving arc of an enabled party must carry
    # a correct contract.  Leaders are enabled unconditionally at start;
    # followers once ALL their entering arcs carry correct contracts.
    for v in digraph.vertices:
        if v in excused:
            continue
        if spec.is_leader(v):
            enabled = True
        else:
            enabled = all(arc in correct_arcs for arc in digraph.in_arcs(v))
        if not enabled:
            continue
        for arc in digraph.out_arcs(v):
            if arc not in correct_arcs:
                role = "leader" if spec.is_leader(v) else "follower with all entering contracts present"
                report.findings.append(
                    FaultFinding(
                        party=v,
                        kind=FaultFinding.UNPUBLISHED,
                        arc=arc,
                        evidence=f"{role} never published on {arc[0]}->{arc[1]}",
                    )
                )

    # Rule 2 (Phase Two, leaders): a leader whose entering arcs all carry
    # correct contracts must open its own hashlock on each of them.
    for lock_index, leader in enumerate(spec.leaders):
        if leader in excused:
            continue
        entering = digraph.in_arcs(leader)
        if not all(arc in correct_arcs for arc in entering):
            continue
        for arc in entering:
            contract, _cid = contract_state[arc]
            if not contract.unlocked[lock_index]:
                report.findings.append(
                    FaultFinding(
                        party=leader,
                        kind=FaultFinding.WITHHELD_SECRET,
                        arc=arc,
                        evidence=(
                            f"leader of hashlock {lock_index} had a correct "
                            f"contract on {arc[0]}->{arc[1]} but never "
                            "revealed its secret there"
                        ),
                    )
                )

    # Rule 3 (Phase Two, relays): a party that provably learned secret i
    # (a leaving arc's lock i was opened at time t, with a Δ of deadline
    # to spare for the extended path) must open lock i on every entering
    # arc that carried a correct contract.
    for v in digraph.vertices:
        if v in excused:
            continue
        for lock_index in range(spec.lock_count()):
            learned_at = _earliest_learning(result, contract_state, v, lock_index)
            if learned_at is None:
                continue
            t_unlock, observed_path_len = learned_at
            extended_deadline = spec.hashkey_deadline(observed_path_len + 1)
            if t_unlock + spec.delta > extended_deadline:
                continue  # not provably enabled: too close to expiry
            for arc in digraph.in_arcs(v):
                if arc not in correct_arcs:
                    continue
                contract, _cid = contract_state[arc]
                # A refunded contract does not excuse the relay: refunds
                # only fire at the lock's *final* timeout, which is never
                # earlier than the deadline of v's extended hashkey.
                if not contract.unlocked[lock_index]:
                    report.findings.append(
                        FaultFinding(
                            party=v,
                            kind=FaultFinding.WITHHELD_RELAY,
                            arc=arc,
                            evidence=(
                                f"lock {lock_index} opened on a leaving arc "
                                f"at t={t_unlock} (path length "
                                f"{observed_path_len}), yet never opened on "
                                f"{arc[0]}->{arc[1]} before its deadline"
                            ),
                        )
                    )
    return report


def _collect_contracts(result: SwapResult) -> dict[Arc, tuple[SwapContract, str]]:
    """The SwapContract (and id) each arc's chain hosts, if any."""
    out: dict[Arc, tuple[SwapContract, str]] = {}
    for arc in result.spec.digraph.arcs:
        chain = result.network.chain_for_arc(arc)
        for contract in chain.contracts():
            if isinstance(contract, SwapContract) and contract.arc == arc:
                out[arc] = (contract, contract.contract_id or "")
                break
    return out


def _earliest_learning(
    result: SwapResult,
    contract_state: dict[Arc, tuple[SwapContract, str]],
    v: Vertex,
    lock_index: int,
) -> tuple[int, int] | None:
    """When (and via how long a path) ``v`` provably learned secret i.

    Evidence: an unlock of lock ``i`` on an arc leaving ``v`` — the
    transaction reveals the secret to ``v`` (and the world).
    """
    best: tuple[int, int] | None = None
    for arc in result.spec.digraph.out_arcs(v):
        entry = contract_state.get(arc)
        if entry is None:
            continue
        contract, _cid = entry
        when = contract.unlock_times[lock_index]
        hashkey = contract.unlock_hashkeys[lock_index]
        if when is None or hashkey is None:
            continue
        if best is None or when < best[0]:
            best = (when, hashkey.path_length)
    return best


# ---------------------------------------------------------------------------
# Bonds
# ---------------------------------------------------------------------------


@dataclass
class BondSettlement:
    """Who posted, who forfeited, who was compensated."""

    bond_amount: int
    deposits: dict[Vertex, int]
    forfeited: dict[Vertex, int]
    compensation: dict[Vertex, int]
    returned: dict[Vertex, int]

    def total_forfeited(self) -> int:
        return sum(self.forfeited.values())

    def conserves_value(self) -> bool:
        paid_in = sum(self.deposits.values())
        paid_out = sum(self.returned.values()) + sum(self.compensation.values())
        return paid_in == paid_out


def settle_bonds(
    result: SwapResult,
    report: FaultReport | None = None,
    bond_amount: int = 100,
) -> BondSettlement:
    """Settle per-party bonds from a swap result and its fault report.

    Every party deposits ``bond_amount``.  Parties named by the fault
    report forfeit their bond; forfeited value is split (integer division,
    remainder to the lexicographically first victims) among non-faulty
    parties who ended worse than Deal.  If the swap succeeded — or nobody
    non-faulty was touched — everyone not at fault is simply refunded.
    """
    if report is None:
        report = attribute_faults(result)
    parties = list(result.spec.digraph.vertices)
    faulty = report.faulty_parties()
    deposits = {v: bond_amount for v in parties}
    forfeited = {v: bond_amount for v in sorted(faulty)}

    harmed = sorted(
        v for v in parties
        if v not in faulty and result.outcomes[v] is not Outcome.DEAL
    )
    compensation: dict[Vertex, int] = {}
    pool = sum(forfeited.values())
    if pool and harmed:
        share, remainder = divmod(pool, len(harmed))
        for index, v in enumerate(harmed):
            compensation[v] = share + (1 if index < remainder else 0)
    elif pool:
        # Nobody to compensate: return the pool to the faulty parties'
        # counterparties is ill-defined, so burn nothing — refund it.
        for v in sorted(faulty):
            forfeited.pop(v)

    returned = {
        v: bond_amount for v in parties if v not in forfeited
    }
    return BondSettlement(
        bond_amount=bond_amount,
        deposits=deposits,
        forfeited=forfeited,
        compensation=compensation,
        returned=returned,
    )
