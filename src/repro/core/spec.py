"""The published swap instance: digraph, leaders, hashlocks, timing.

§4.2: the market-clearing service "publishes a swap digraph D = (V, A), a
vector L ⊂ V of leaders forming a feedback vertex set, a vector of those
leaders' hashlocks h0...hl, and a starting time T".  A :class:`SwapSpec`
is exactly that publication, plus the timing parameters every contract
needs (``Δ``, the agreed ``diam(D)`` value, and the optional timeout slack
discussed in DESIGN.md §2) and the key directory used to verify hashkey
signature chains.

The spec is common knowledge: every party and every contract holds (a copy
of) it, which is what Theorem 4.10's ``O(|A|^2)`` space bound charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import KeyDirectory
from repro.crypto.signatures import SignatureScheme
from repro.digraph.digraph import Arc, Digraph, Vertex
from repro.digraph.feedback import require_feedback_vertex_set
from repro.digraph.paths import (
    EXACT_LONGEST_PATH_LIMIT,
    diameter,
    is_strongly_connected,
    longest_path_length,
)
from repro.errors import ClearingError, NotStronglyConnectedError


@dataclass
class SwapSpec:
    """Everything common knowledge among the parties of one swap.

    Attributes:
        digraph: The swap digraph ``D``; vertices are party addresses.
        leaders: Ordered leader vector ``L``; index ``i`` owns hashlock ``i``.
        hashlocks: ``h_i = H(s_i)`` for each leader, in leader order.
        start_time: The protocol starting time ``T`` in ticks.
        delta: The paper's ``Δ`` in ticks.
        diam: The ``diam(D)`` value all contracts use in deadline formulas
            (an upper bound is safe; see DESIGN.md §2).
        timeout_slack: Extra Δ-multiples added to every hashkey deadline.
            ``0`` reproduces Fig. 5 line 28 verbatim.
        directory: Published address → public-key directory.
        schemes: Signature scheme instances by name, shared by all parties
            and contracts (stateful schemes require shared instances).
    """

    digraph: Digraph
    leaders: tuple[Vertex, ...]
    hashlocks: tuple[bytes, ...]
    start_time: int
    delta: int
    diam: int
    timeout_slack: int = 0
    directory: KeyDirectory = field(default_factory=KeyDirectory)
    schemes: dict[str, SignatureScheme] = field(default_factory=dict)
    broadcast_unlock_enabled: bool = False
    """When True, contracts accept the §4.5 broadcast short-circuit paths
    (a logical arc from every follower directly to each leader)."""

    _longest_cache: dict[tuple[Vertex, Vertex], int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not is_strongly_connected(self.digraph):
            raise NotStronglyConnectedError(
                "swap digraphs must be strongly connected (Theorem 3.5)"
            )
        if len(self.leaders) != len(set(self.leaders)):
            raise ClearingError("duplicate leader")
        if not self.leaders:
            raise ClearingError("at least one leader is required")
        for leader in self.leaders:
            if not self.digraph.has_vertex(leader):
                raise ClearingError(f"leader {leader!r} is not a party")
        require_feedback_vertex_set(self.digraph, set(self.leaders))
        if len(self.hashlocks) != len(self.leaders):
            raise ClearingError(
                f"{len(self.leaders)} leaders but {len(self.hashlocks)} hashlocks"
            )
        if self.delta <= 0:
            raise ClearingError("delta must be positive")
        if self.start_time < 0:
            raise ClearingError("start_time must be non-negative")
        if self.diam < 1:
            raise ClearingError("diam must be at least 1")
        if self.timeout_slack < 0:
            raise ClearingError("timeout_slack must be non-negative")

    # -- roles -------------------------------------------------------------------

    @property
    def parties(self) -> tuple[Vertex, ...]:
        return self.digraph.vertices

    def is_leader(self, address: Vertex) -> bool:
        return address in self.leaders

    def is_follower(self, address: Vertex) -> bool:
        return self.digraph.has_vertex(address) and address not in self.leaders

    def lock_count(self) -> int:
        return len(self.leaders)

    def lock_index_of(self, leader: Vertex) -> int:
        try:
            return self.leaders.index(leader)
        except ValueError:
            raise ClearingError(f"{leader!r} is not a leader") from None

    def leader_of_lock(self, lock_index: int) -> Vertex:
        if not 0 <= lock_index < len(self.leaders):
            raise ClearingError(f"no hashlock with index {lock_index}")
        return self.leaders[lock_index]

    # -- deadlines (§4.1) ----------------------------------------------------------

    def hashkey_deadline(self, path_length: int) -> int:
        """Absolute expiry of a hashkey whose path has ``path_length`` arcs.

        §4.1: "A hashkey (s, p, σ) times out at time (diam(D) + |p|)·Δ
        after the start of the protocol" (plus the configured slack).
        """
        if path_length < 0:
            raise ClearingError("path length cannot be negative")
        return self.start_time + (self.diam + path_length + self.timeout_slack) * self.delta

    def longest_path_to(self, source: Vertex, leader: Vertex) -> int:
        """Cached ``D(source, leader)`` (longest simple path length)."""
        key = (source, leader)
        if key not in self._longest_cache:
            self._longest_cache[key] = longest_path_length(
                self.digraph, source, leader
            )
        return self._longest_cache[key]

    def lock_final_timeout(self, arc: Arc, lock_index: int) -> int:
        """When hashlock ``lock_index`` has timed out *on this arc*.

        §4.1: "A hashlock has timed out on an arc when all of its hashkeys
        on that arc have timed out."  The latest valid hashkey follows the
        longest simple path from the arc's counterparty to the lock's
        leader, so the final timeout is
        ``start + (diam + D(counterparty, leader_i) + slack)·Δ``.
        """
        _, counterparty = arc
        leader = self.leader_of_lock(lock_index)
        longest = self.longest_path_to(counterparty, leader)
        if self.broadcast_unlock_enabled and counterparty != leader:
            # The logical follower→leader arc adds a path of length 1, which
            # is never the longest unless the graph is tiny; max for safety.
            longest = max(longest, 1)
        return self.start_time + (self.diam + longest + self.timeout_slack) * self.delta

    def latest_timeout(self, arc: Arc) -> int:
        """The latest final timeout across all hashlocks on ``arc``."""
        return max(
            self.lock_final_timeout(arc, i) for i in range(self.lock_count())
        )

    def phase_two_bound(self) -> int:
        """Theorem 4.7's bound: all triggers by ``start + 2·diam·Δ``.

        With nonzero slack the bound loosens accordingly.
        """
        return self.start_time + (2 * self.diam + self.timeout_slack) * self.delta

    # -- path validation (Fig. 5 line 30) --------------------------------------------

    def is_valid_hashkey_path(
        self, path: tuple[Vertex, ...], lock_index: int, counterparty: Vertex
    ) -> bool:
        """Check ``p`` runs from the counterparty to the lock's leader in D.

        With the broadcast optimisation enabled, the logical direct arc
        ``(counterparty, leader)`` is also accepted (§4.5).
        """
        if not path:
            return False
        if path[0] != counterparty:
            return False
        if path[-1] != self.leader_of_lock(lock_index):
            return False
        if self.digraph.is_path(path):
            return True
        if (
            self.broadcast_unlock_enabled
            and len(path) == 2
            and self.digraph.has_vertex(path[0])
        ):
            # Logical arc from any party straight to the leader.
            return True
        return False

    # -- storage accounting -------------------------------------------------------------

    def stored_fields_size_bytes(self) -> int:
        """Bytes one contract stores for its copy of the spec-derived state.

        Fig. 4's long-lived fields: the digraph, the leader vector, the
        hashlock vector, and the timelock vector (one final timeout per
        lock), plus the scalar timing fields.
        """
        digraph_bytes = self.digraph.encoded_size_bytes()
        leaders_bytes = sum(len(l.encode()) for l in self.leaders)
        hashlock_bytes = 32 * len(self.hashlocks)
        timelock_bytes = 8 * len(self.leaders)
        scalars = 8 * 4  # start, delta, diam, slack
        return digraph_bytes + leaders_bytes + hashlock_bytes + timelock_bytes + scalars


def compute_diameter_for_spec(
    digraph: Digraph, exact_limit: int = EXACT_LONGEST_PATH_LIMIT
) -> int:
    """The ``diam`` value a clearing service publishes for ``digraph``."""
    return diameter(digraph, exact_limit=exact_limit)
