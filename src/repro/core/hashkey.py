"""Hashkeys: path-scoped, signature-chained secrets (§4.1).

A hashkey for hashlock ``h`` on an arc is a triple ``(s, p, σ)``: the
secret, a path from the presenting counterparty to the leader who generated
``s``, and the nested signature chain of every party on the path.  Its
deadline grows with the path length — ``(diam(D) + |p|)·Δ`` after start —
which is the mechanism that lets different parties enjoy different
timeouts on the *same* hashlock, solving the cyclic-follower problem of
Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import matches
from repro.crypto.keys import KeyPair
from repro.crypto.sigchain import (
    SignatureChain,
    extend_chain,
    sign_secret,
    verify_chain,
)
from repro.crypto.signatures import SignatureScheme
from repro.core.spec import SwapSpec
from repro.errors import InvalidHashkeyError


@dataclass(frozen=True)
class Hashkey:
    """The triple ``(s, p, σ)`` presented to a contract's ``unlock``.

    Attributes:
        lock_index: Which hashlock of the spec's vector this key opens.
        secret: The leader's secret ``s``.
        path: ``(u0, ..., uk)`` — addresses from presenter to leader.
        sig_chain: One signature per path vertex (see
            :mod:`repro.crypto.sigchain`).
    """

    lock_index: int
    secret: bytes
    path: tuple[str, ...]
    sig_chain: SignatureChain

    def __post_init__(self) -> None:
        if not self.path:
            raise InvalidHashkeyError("hashkey path cannot be empty")
        if len(self.sig_chain) != len(self.path):
            raise InvalidHashkeyError(
                f"signature chain has {len(self.sig_chain)} layers for a "
                f"path of {len(self.path)} vertices"
            )

    @property
    def path_length(self) -> int:
        """``|p|``: the number of arcs, i.e. vertices minus one."""
        return len(self.path) - 1

    @property
    def presenter(self) -> str:
        """The counterparty this hashkey is valid for (``u0``)."""
        return self.path[0]

    @property
    def leader(self) -> str:
        return self.path[-1]

    def deadline(self, spec: SwapSpec) -> int:
        return spec.hashkey_deadline(self.path_length)

    # -- construction ------------------------------------------------------------

    @classmethod
    def originate(
        cls,
        lock_index: int,
        secret: bytes,
        leader_keypair: KeyPair,
        scheme: SignatureScheme,
    ) -> "Hashkey":
        """The leader's degenerate hashkey: path ``(v_i)``, ``|p| = 0``.

        §4.5: "at the start of the phase, v_i calls unlock(s_i, v_i,
        sig(s_i, v_i)) at each entering arc's contract".
        """
        return cls(
            lock_index=lock_index,
            secret=secret,
            path=(leader_keypair.address,),
            sig_chain=sign_secret(secret, leader_keypair, scheme),
        )

    def extend(self, keypair: KeyPair, scheme: SignatureScheme) -> "Hashkey":
        """``(s, v + p, sig(σ, v))`` — the relay step of Phase Two."""
        if keypair.address in self.path[:-1] or keypair.address == self.path[-1]:
            raise InvalidHashkeyError(
                f"{keypair.address} already appears in the hashkey path"
            )
        return Hashkey(
            lock_index=self.lock_index,
            secret=self.secret,
            path=(keypair.address,) + self.path,
            sig_chain=extend_chain(self.sig_chain, keypair, scheme),
        )

    # -- validation (the contract-side checks of Fig. 5) -----------------------------

    def verify(self, spec: SwapSpec, counterparty: str, now: int) -> None:
        """Run every unlock-time check; raise :class:`InvalidHashkeyError`.

        Mirrors Fig. 5 lines 28-31 in order: deadline, secret, path,
        signatures.
        """
        deadline = self.deadline(spec)
        if now >= deadline:
            raise InvalidHashkeyError(
                f"hashkey timed out: now={now} >= deadline={deadline} "
                f"(|p|={self.path_length})"
            )
        if not 0 <= self.lock_index < spec.lock_count():
            raise InvalidHashkeyError(f"no hashlock {self.lock_index}")
        if not matches(spec.hashlocks[self.lock_index], self.secret):
            raise InvalidHashkeyError("secret does not match hashlock")
        if not spec.is_valid_hashkey_path(self.path, self.lock_index, counterparty):
            raise InvalidHashkeyError(
                f"path {self.path!r} is not a digraph path from "
                f"{counterparty} to leader {spec.leader_of_lock(self.lock_index)}"
            )
        if not verify_chain(
            self.sig_chain, self.secret, self.path, spec.directory, spec.schemes
        ):
            raise InvalidHashkeyError("signature chain verification failed")

    # -- wire format --------------------------------------------------------------

    def to_args(self) -> dict:
        """Contract-call arguments (canonically encodable)."""
        return {
            "lock_index": self.lock_index,
            "secret": self.secret,
            "path": list(self.path),
            "sig_layers": list(self.sig_chain.layers),
        }

    @classmethod
    def from_args(cls, args: dict) -> "Hashkey":
        return cls(
            lock_index=args["lock_index"],
            secret=args["secret"],
            path=tuple(args["path"]),
            sig_chain=SignatureChain(layers=tuple(args["sig_layers"])),
        )

    def encoded_size_bytes(self) -> int:
        """Bytes this hashkey occupies in an unlock transaction."""
        return (
            8
            + len(self.secret)
            + sum(len(v.encode()) for v in self.path)
            + self.sig_chain.encoded_size_bytes()
        )
