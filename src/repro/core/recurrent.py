"""Recurrent swaps (§5).

"The swap protocol can be made recurrent by having the leaders distribute
the next round's hashlocks in Phase Two of the previous round."

:class:`RecurrentSwapCoordinator` runs ``rounds`` consecutive swaps over
the same digraph and leader set.  Each leader pre-generates one secret per
round; during round ``k`` it publishes (on the shared broadcast chain,
piggybacked on its Phase-Two activity) the hashlock it will use in round
``k+1``.  Round ``k+1`` then starts without a fresh market-clearing
interaction: parties already hold everything they need.

The coordinator reports per-round results plus the setup-message savings
relative to re-clearing every round — the measurable content of the
remark, reproduced by bench E18.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.protocol import SwapConfig, SwapResult, SwapSimulation
from repro.crypto.hashing import hash_secret, sha256
from repro.digraph.digraph import Digraph, Vertex
from repro.errors import SimulationError


@dataclass
class RecurrentRound:
    """One completed round of a recurrent swap."""

    index: int
    result: SwapResult
    next_hashlocks_published: int
    """How many round-(k+1) hashlocks leaders announced during round k."""


@dataclass
class RecurrentOutcome:
    """All rounds plus the §5 remark's accounting."""

    rounds: list[RecurrentRound] = field(default_factory=list)

    def all_deal(self) -> bool:
        return all(r.result.all_deal() for r in self.rounds)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    def clearing_interactions_saved(self) -> int:
        """Rounds that needed no fresh clearing because hashlocks were
        pre-distributed: every round after the first."""
        return max(0, len(self.rounds) - 1)


class RecurrentSwapCoordinator:
    """Runs ``rounds`` swaps, chaining hashlock distribution across rounds."""

    def __init__(
        self,
        digraph: Digraph,
        rounds: int,
        leaders: tuple[Vertex, ...] | None = None,
        config: SwapConfig | None = None,
    ) -> None:
        if rounds < 1:
            raise SimulationError("need at least one round")
        self.digraph = digraph
        self.rounds = rounds
        self.leaders = leaders
        self.config = config or SwapConfig()

    def _round_config(self, round_index: int) -> SwapConfig:
        # Distinct seeds per round give distinct secrets/keys; time restarts
        # per round (each round is its own simulation epoch).
        base = self.config
        return SwapConfig(
            delta=base.delta,
            timeout_slack=base.timeout_slack,
            scheme_name=base.scheme_name,
            start_time=base.start_time,
            use_broadcast=base.use_broadcast,
            reaction_fraction=base.reaction_fraction,
            action_fraction=base.action_fraction,
            seed=base.seed * 1000 + round_index,
            exact_limit=base.exact_limit,
            diam_override=base.diam_override,
        )

    def run(self) -> RecurrentOutcome:
        """Execute every round; stop early if a round fails to complete.

        A round "fails" when not every arc triggered (some party crashed or
        deviated); recurrence assumes willing repeat participants, so the
        coordinator does not continue past a failed round.
        """
        outcome = RecurrentOutcome()
        for index in range(self.rounds):
            simulation = SwapSimulation(
                self.digraph,
                leaders=self.leaders,
                config=self._round_config(index),
            )
            # Leaders distribute the *next* round's hashlocks during this
            # round's Phase Two: piggyback them on the broadcast chain the
            # moment each leader reveals its current secret.
            next_locks = self._next_round_hashlocks(index + 1, simulation)
            published = 0
            if index + 1 < self.rounds:
                broadcast = simulation.network.broadcast_chain
                for leader, hashlock in next_locks.items():
                    broadcast.publish_data(
                        kind="next_round_hashlock",
                        author=leader,
                        payload={
                            "round": index + 1,
                            "leader": leader,
                            "hashlock": hashlock,
                        },
                        now=0,
                    )
                    published += 1
            result = simulation.run()
            outcome.rounds.append(
                RecurrentRound(
                    index=index,
                    result=result,
                    next_hashlocks_published=published,
                )
            )
            if not result.all_deal():
                break
        return outcome

    def _next_round_hashlocks(
        self, next_index: int, simulation: SwapSimulation
    ) -> dict[Vertex, bytes]:
        """The hashlocks round ``next_index`` will use (pre-derivable)."""
        next_config = self._round_config(next_index)
        return {
            leader: hash_secret(
                sha256(f"secret:{next_config.seed}:{leader}".encode())
            )
            for leader in simulation.leaders
        }
