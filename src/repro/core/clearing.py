"""The market-clearing service of §4.2.

"For simplicity, assume the swap digraph is constructed by a (possibly
centralized) market-clearing service ... The clearing service is not a
trusted party, because the parties can check the consistency of the
clearing service's responses."

Each party submits an :class:`Offer` — the transfers it is willing to make
— together with its hashlock.  The service combines offers into a swap
digraph, chooses a leader set (a feedback vertex set), assembles the
hashlock vector from the leaders' submitted hashlocks, fixes a starting
time at least ``Δ`` in the future, and publishes the resulting
:class:`~repro.core.spec.SwapSpec` (optionally on a broadcast chain).

Consistency checking (:func:`check_spec_against_offer`) is what makes the
service trust-free: a party verifies that the published digraph contains
exactly the transfers it offered, that its own hashlock appears if it was
named a leader, and that the leader set really is an FVS; otherwise it
declines to participate and loses nothing.

The module also solves a miniature *clearing problem* for barter markets
(:func:`match_barter`): given single-item wants/haves, it extracts the
permutation cycles — the classic kidney-exchange shape the paper's related
work discusses — and returns them as swap digraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.blockchain import Blockchain
from repro.core.spec import SwapSpec, compute_diameter_for_spec
from repro.crypto.keys import KeyDirectory
from repro.crypto.signatures import SignatureScheme
from repro.digraph.digraph import Arc, Digraph, Vertex
from repro.digraph.feedback import feedback_vertex_set, is_feedback_vertex_set
from repro.digraph.paths import is_strongly_connected
from repro.errors import ClearingError


@dataclass(frozen=True)
class ProposedTransfer:
    """One transfer a party is willing to make."""

    to: Vertex
    description: str = ""
    value: int = 1


@dataclass(frozen=True)
class Offer:
    """A party's submission: its identity, hashlock, and offered transfers.

    §4.2: "Each party creates a secret s and matching hashlock h = H(s).
    It sends the clearing service its hashlock, along with an offer
    characterizing the swaps it is willing to make."
    """

    party: Vertex
    hashlock: bytes
    transfers: tuple[ProposedTransfer, ...]

    def __post_init__(self) -> None:
        if not self.party:
            raise ClearingError("offer needs a party")
        if len(self.hashlock) != 32:
            raise ClearingError("hashlock must be a 32-byte digest")
        recipients = [t.to for t in self.transfers]
        if len(set(recipients)) != len(recipients):
            raise ClearingError(
                f"{self.party}: duplicate recipient in offer (use a "
                "MultiDigraph swap for parallel transfers)"
            )
        if self.party in recipients:
            raise ClearingError(f"{self.party}: cannot offer a transfer to itself")


@dataclass
class ClearingOutcome:
    """What the service publishes: the spec plus per-arc transfer values."""

    spec: SwapSpec
    arc_values: dict[Arc, int] = field(default_factory=dict)


class MarketClearingService:
    """Combines offers into a published swap spec (untrusted, checkable)."""

    def __init__(
        self,
        delta: int,
        directory: KeyDirectory,
        schemes: dict[str, SignatureScheme],
        timeout_slack: int = 0,
        exact_limit: int = 14,
    ) -> None:
        self.delta = delta
        self.directory = directory
        self.schemes = schemes
        self.timeout_slack = timeout_slack
        self.exact_limit = exact_limit
        self._offers: dict[Vertex, Offer] = {}

    def submit(self, offer: Offer) -> None:
        """Accept one offer per party; resubmission replaces the old offer."""
        if offer.party not in self.directory:
            raise ClearingError(
                f"{offer.party} has no published key; register it first"
            )
        self._offers[offer.party] = offer

    def offers(self) -> list[Offer]:
        return list(self._offers.values())

    def clear(
        self,
        now: int = 0,
        leaders: tuple[Vertex, ...] | None = None,
        broadcast_chain: Blockchain | None = None,
    ) -> ClearingOutcome:
        """Combine all offers into a swap digraph and publish the spec.

        The starting time is ``now + Δ`` (§4.2: "a starting time T, at
        least Δ in the future").  Raises :class:`ClearingError` when the
        combined digraph is not a strongly connected swap (parties would
        never agree to it — Theorem 3.5).
        """
        if not self._offers:
            raise ClearingError("no offers submitted")
        vertices = list(self._offers)
        arcs: list[Arc] = []
        arc_values: dict[Arc, int] = {}
        for offer in self._offers.values():
            for transfer in offer.transfers:
                if transfer.to not in self._offers:
                    raise ClearingError(
                        f"{offer.party} offers a transfer to {transfer.to}, "
                        "which submitted no offer"
                    )
                arc = (offer.party, transfer.to)
                arcs.append(arc)
                arc_values[arc] = transfer.value
        digraph = Digraph(vertices, arcs)
        if not is_strongly_connected(digraph):
            raise ClearingError(
                "combined offers do not form a strongly connected digraph; "
                "no atomic protocol exists for them (Theorem 3.5)"
            )

        if leaders is None:
            chosen = feedback_vertex_set(digraph, exact_limit=self.exact_limit)
            leaders = tuple(v for v in digraph.vertices if v in chosen)
        elif not is_feedback_vertex_set(digraph, set(leaders)):
            raise ClearingError("proposed leaders are not a feedback vertex set")

        hashlocks = tuple(self._offers[l].hashlock for l in leaders)
        spec = SwapSpec(
            digraph=digraph,
            leaders=leaders,
            hashlocks=hashlocks,
            start_time=now + self.delta,
            delta=self.delta,
            diam=compute_diameter_for_spec(digraph, self.exact_limit),
            timeout_slack=self.timeout_slack,
            directory=self.directory,
            schemes=self.schemes,
        )
        if broadcast_chain is not None:
            broadcast_chain.publish_data(
                kind="swap_spec_published",
                author="clearing-service",
                payload=_spec_payload(spec),
                now=now,
            )
        return ClearingOutcome(spec=spec, arc_values=arc_values)


def _spec_payload(spec: SwapSpec) -> dict:
    return {
        "digraph": spec.digraph.to_dict(),
        "leaders": list(spec.leaders),
        "hashlocks": [h.hex() for h in spec.hashlocks],
        "start_time": spec.start_time,
        "delta": spec.delta,
        "diam": spec.diam,
        "timeout_slack": spec.timeout_slack,
    }


def check_spec_against_offer(spec: SwapSpec, offer: Offer) -> list[str]:
    """A party's §4.2 consistency check; returns human-readable complaints.

    Empty list means the published spec is consistent with what the party
    offered: its leaving arcs are exactly its offered transfers, its
    hashlock is used if (and only if) it was named a leader, the leader
    set is a genuine FVS, and the start time is sane.  A party with
    complaints simply declines — it has escrowed nothing yet.
    """
    problems: list[str] = []
    party = offer.party
    if not spec.digraph.has_vertex(party):
        return [f"{party} does not appear in the published digraph"]
    offered = {(party, t.to) for t in offer.transfers}
    published = set(spec.digraph.out_arcs(party))
    if offered != published:
        problems.append(
            f"{party}: published leaving arcs {sorted(published)} do not "
            f"match offered transfers {sorted(offered)}"
        )
    if party in spec.leaders:
        index = spec.lock_index_of(party)
        if spec.hashlocks[index] != offer.hashlock:
            problems.append(f"{party}: published hashlock is not the one submitted")
    if not is_feedback_vertex_set(spec.digraph, set(spec.leaders)):
        problems.append("published leader set is not a feedback vertex set")
    if not is_strongly_connected(spec.digraph):
        problems.append("published digraph is not strongly connected")
    return problems


# ---------------------------------------------------------------------------
# A miniature clearing problem: single-item barter (kidney-exchange shape)
# ---------------------------------------------------------------------------


def match_barter(
    haves: dict[Vertex, str], wants: dict[Vertex, str]
) -> list[Digraph]:
    """Extract swap cycles from single-item barter preferences.

    Each party holds one item (``haves``) and wants one item (``wants``).
    An arc ``(u, v)`` means ``u`` hands its item to ``v`` because ``v``
    wants exactly what ``u`` has.  When every wanted item is held by
    exactly one party, the relation is a partial permutation whose cycles
    are exactly the feasible swaps; parties not on a cycle are unmatched.

    Returns one strongly connected :class:`Digraph` per cycle (2-cycles
    and longer).  This is the "clearing problem" of the related-work
    discussion (Shapley-Scarf / kidney exchange), kept deliberately simple
    — the hard part the paper addresses is *executing* the swaps.
    """
    if set(haves) != set(wants):
        raise ClearingError("haves and wants must cover the same parties")
    item_holder: dict[str, Vertex] = {}
    for party, item in haves.items():
        if item in item_holder:
            raise ClearingError(f"item {item!r} held by two parties")
        item_holder[item] = party

    successor: dict[Vertex, Vertex] = {}
    for party, wanted in wants.items():
        holder = item_holder.get(wanted)
        if holder is None or holder == party:
            continue
        successor[holder] = party  # holder hands its item to the wanter

    cycles: list[list[Vertex]] = []
    visited: set[Vertex] = set()
    for start in haves:
        if start in visited or start not in successor:
            continue
        path: list[Vertex] = []
        seen_at: dict[Vertex, int] = {}
        v: Vertex | None = start
        while v is not None and v not in visited:
            if v in seen_at:
                cycles.append(path[seen_at[v]:])
                break
            seen_at[v] = len(path)
            path.append(v)
            v = successor.get(v)
        visited.update(path)

    digraphs = []
    for cycle in cycles:
        if len(cycle) < 2:
            continue
        arcs = [(cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))]
        digraphs.append(Digraph(cycle, arcs))
    return digraphs
