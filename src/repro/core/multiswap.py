"""Directed-multigraph swaps (§5).

"The protocol is easily extended to a model where there may be more than
one arc from one vertex to another ... reflecting the situation where
Alice wants to transfer assets on distinct blockchains to Bob."

The extension is indeed easy, and for a precise reason this module makes
explicit: *multiplicity is invisible to every quantity the protocol
depends on*.  Strong connectivity, feedback vertex sets, simple paths,
``diam(D)`` and hashkey deadlines are all functions of which ordered pairs
are connected, never of how many parallel arcs connect them.  Every
parallel arc ``(u, v, k)`` carries the same hashlock vector and the same
deadline formulas as ``(u, v)``, so its contract unlocks, triggers and
refunds under *identical* conditions.

We therefore execute a :class:`~repro.digraph.multigraph.MultiDigraph`
swap by running the standard protocol on the underlying simple digraph
with one *bundle* asset per connected pair whose value is the sum of the
parallel assets, then projecting the per-pair result back onto the keyed
arcs.  The projection is exact: a keyed arc triggered iff its pair's
contract triggered.  (A deployment would publish one contract per keyed
arc on its own chain; since all parallel contracts share every input of
their state machines, their states coincide step for step — the bundle is
an execution-level optimisation, not a semantic change.)

Timing models ride along for free: the scenario's ``config.timing``
reaches the underlying :class:`SwapSimulation` (and so the shared
harness), and per-vertex profiles apply uniformly to all of a party's
parallel arcs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.outcomes import Outcome
from repro.core.protocol import SwapConfig, SwapResult, SwapSimulation
from repro.digraph.digraph import Arc, Vertex
from repro.digraph.multigraph import MultiArc, MultiDigraph
from repro.sim.faults import FaultPlan


@dataclass
class MultiSwapResult:
    """The simple-digraph result projected back onto keyed arcs."""

    multigraph: MultiDigraph
    base: SwapResult
    triggered_multiarcs: frozenset[MultiArc]
    refunded_multiarcs: frozenset[MultiArc]

    def all_deal(self) -> bool:
        return self.base.all_deal()

    def conforming_acceptable(self) -> bool:
        return self.base.conforming_acceptable()

    @property
    def outcomes(self) -> dict[Vertex, Outcome]:
        return self.base.outcomes

    @property
    def completion_time(self) -> int | None:
        return self.base.completion_time

    def multiplicity_transferred(self, u: Vertex, v: Vertex) -> int:
        """How many parallel ``u -> v`` assets actually moved."""
        return sum(
            1 for (a, b, _k) in self.triggered_multiarcs if (a, b) == (u, v)
        )


def bundle_values(
    multigraph: MultiDigraph, multiarc_values: dict[MultiArc, int] | None = None
) -> dict[Arc, int]:
    """Per-pair bundle values: the sum over each pair's parallel arcs."""
    values: dict[Arc, int] = {}
    for (u, v, k) in multigraph.arcs:
        value = 1 if multiarc_values is None else multiarc_values.get((u, v, k), 1)
        values[(u, v)] = values.get((u, v), 0) + value
    return values


def project_result(multigraph: MultiDigraph, base: SwapResult) -> MultiSwapResult:
    """Project a bundled simple-digraph result back onto keyed arcs."""
    triggered = frozenset(
        (u, v, k) for (u, v, k) in multigraph.arcs if (u, v) in base.triggered
    )
    refunded = frozenset(
        (u, v, k) for (u, v, k) in multigraph.arcs if (u, v) in base.refunded
    )
    return MultiSwapResult(
        multigraph=multigraph,
        base=base,
        triggered_multiarcs=triggered,
        refunded_multiarcs=refunded,
    )


def prepare_multigraph_swap(
    multigraph: MultiDigraph,
    leaders: tuple[Vertex, ...] | list[Vertex] | None = None,
    config: SwapConfig | None = None,
    faults: FaultPlan | None = None,
    strategies: dict | None = None,
    multiarc_values: dict[MultiArc, int] | None = None,
):
    """``(harness, start_time, finalize)`` for the execution-session
    layer; ``finalize`` yields the projected :class:`MultiSwapResult`."""
    simulation = SwapSimulation(
        multigraph.underlying_simple(),
        leaders=leaders,
        config=config,
        faults=faults,
        strategies=strategies,
        asset_values=bundle_values(multigraph, multiarc_values),
    )
    harness, start_time, collect = simulation.prepared()

    def finalize(events_fired: int) -> MultiSwapResult:
        return project_result(multigraph, collect(events_fired))

    return harness, start_time, finalize


def run_multigraph_swap(
    multigraph: MultiDigraph,
    leaders: tuple[Vertex, ...] | list[Vertex] | None = None,
    config: SwapConfig | None = None,
    faults: FaultPlan | None = None,
    strategies: dict | None = None,
    multiarc_values: dict[MultiArc, int] | None = None,
) -> MultiSwapResult:
    """Execute a multigraph swap via the bundled simple-digraph protocol.

    ``multiarc_values`` prices each keyed arc; a pair's bundle value is
    the sum over its parallel arcs.
    """
    base = SwapSimulation(
        multigraph.underlying_simple(),
        leaders=leaders,
        config=config,
        faults=faults,
        strategies=strategies,
        asset_values=bundle_values(multigraph, multiarc_values),
    ).run()
    return project_result(multigraph, base)
