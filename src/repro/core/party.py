"""Conforming party behaviour: the §4.5 protocol as a state machine.

A :class:`SwapParty` is a simulated process that follows the paper's
protocol exactly:

**Phase One** (contract propagation, the lazy pebble game on ``D``):
leaders publish a :class:`~repro.core.contract.SwapContract` on every
leaving arc at the starting time; followers wait until *correct* contracts
exist on all entering arcs, then publish on all leaving arcs.  Any
incorrect contract causes the party to abandon the protocol (never
publishing or unlocking), while still refunding whatever it already
escrowed once timeouts pass.

**Phase Two** (hashkey propagation, the eager pebble game on ``D^T``):
once all of a leader's entering arcs carry contracts, the leader unlocks
them with its degenerate hashkey ``(s, (v_i), sig(s, v_i))``.  The first
time any party observes hashlock ``i`` unlocked on a *leaving* arc with
hashkey ``(s, p, σ)``, it extends the key to ``(s, v+p, sig(σ, v))`` and
unlocks all of its entering arcs.  Fully unlocked entering contracts are
claimed; leaving contracts whose hashlocks time out are refunded.

Deviating behaviours subclass this and override the small hook methods —
see :mod:`repro.core.strategies`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.chain.assets import Asset
from repro.chain.blockchain import Blockchain
from repro.chain.ledger import Record
from repro.chain.network import BROADCAST_CHAIN_ID, ChainNetwork
from repro.core.contract import SwapContract, is_correct_contract_state
from repro.core.hashkey import Hashkey
from repro.core.spec import SwapSpec
from repro.crypto.keys import KeyPair
from repro.crypto.sigchain import SignatureChain
from repro.crypto.signatures import SignatureScheme
from repro.digraph.digraph import Arc
from repro.errors import AssetError, ContractError, InvalidHashkeyError
from repro.sim import trace as tr
from repro.sim.faults import Crash, CrashPoint
from repro.sim.process import Process, ReactionProfile
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import Trace


class SwapParty(Process):
    """A conforming participant (leader or follower, per the spec)."""

    def __init__(
        self,
        keypair: KeyPair,
        spec: SwapSpec,
        network: ChainNetwork,
        assets: dict[Arc, Asset],
        trace: "Trace",
        scheduler: Scheduler,
        profile: ReactionProfile,
        secret: bytes | None = None,
        use_broadcast: bool = False,
    ) -> None:
        super().__init__(keypair.address, scheduler, profile)
        self.keypair = keypair
        self.spec = spec
        self.network = network
        self.assets = assets
        self.trace = trace
        self.secret = secret
        self.use_broadcast = use_broadcast

        self.address = keypair.address
        self.is_leader = spec.is_leader(self.address)
        if self.is_leader and secret is None:
            raise ContractError(f"leader {self.address} needs its secret")
        self.entering: tuple[Arc, ...] = spec.digraph.in_arcs(self.address)
        self.leaving: tuple[Arc, ...] = spec.digraph.out_arcs(self.address)

        # Protocol state.
        self.verified_incoming: set[Arc] = set()
        self.incoming_contract_ids: dict[Arc, str] = {}
        self.outgoing_contract_ids: dict[Arc, str] = {}
        self.known_hashkeys: dict[int, Hashkey] = {}
        self.unlocked_incoming: dict[Arc, set[int]] = {arc: set() for arc in self.entering}
        self.claimed: set[Arc] = set()
        self.refunded: set[Arc] = set()
        self.abandoned = False
        self.phase_two_started = False
        self.published = False
        self.crash_plan: Crash | None = None
        self._unlock_calls_sent = 0

    # -- scheme helpers -----------------------------------------------------------

    @property
    def scheme(self) -> SignatureScheme:
        return self.spec.schemes[self.keypair.scheme]

    # -- crash hooks ----------------------------------------------------------------

    def _maybe_crash(self, point: CrashPoint) -> bool:
        """Halt here if the fault plan says so; True when crashed."""
        if self.crash_plan is not None and self.crash_plan.at_point is point:
            self.halt()
            self.trace.record(
                self.scheduler.now, tr.PARTY_CRASHED, self.address, point=point.value
            )
            return True
        return False

    # -- protocol entry point ---------------------------------------------------------

    def start(self) -> None:
        """Called at the spec's starting time ``T``.

        Leaders publish *at* ``T`` with no extra action delay: the spec was
        published at least Δ earlier (§4.2), so a conforming leader has its
        contracts prepared — this matches the pebble-game model, where the
        round-0 pebbles are placed when the game starts, and it is what
        keeps the strict Fig. 5 deadlines live on diameter-1 digraphs.
        """
        if self._maybe_crash(CrashPoint.AT_START):
            return
        if self.is_leader:
            self._publish_outgoing()
        # Followers simply wait for contracts on all entering arcs.

    # -- Phase One: publication ----------------------------------------------------------

    def _publish_outgoing(self) -> None:
        """Publish a correct swap contract on every leaving arc (one action)."""
        if self.abandoned or self.published:
            return
        self.published = True
        now = self.scheduler.now
        for arc in self.leaving:
            if not self.should_publish(arc):
                continue
            contract = self.make_contract(arc)
            chain = self.network.chain_for_arc(arc)
            try:
                contract_id = chain.publish_contract(contract, self.address, now)
            except (AssetError, ContractError) as error:
                self.trace.record(
                    now, tr.CONTRACT_REJECTED, self.address, arc=list(arc), error=str(error)
                )
                continue
            self.outgoing_contract_ids[arc] = contract_id
            self.trace.record(
                now, tr.CONTRACT_PUBLISHED, self.address, arc=list(arc), contract_id=contract_id
            )
            self._schedule_refund_watches(arc, contract_id)
        self._maybe_crash(CrashPoint.AFTER_PHASE_ONE_PUBLISH)

    def should_publish(self, arc: Arc) -> bool:
        """Strategy hook: conforming parties publish on every leaving arc."""
        return True

    def make_contract(self, arc: Arc) -> SwapContract:
        """Strategy hook: conforming parties build spec-correct contracts."""
        return SwapContract(self.spec, arc, self.assets[arc])

    # -- observation dispatch (wired by the runner) -----------------------------------------

    def on_chain_record(self, chain: Blockchain, record: Record, landed_at: int) -> None:
        """Handle one observed ledger record (already delayed by the runner)."""
        if self.abandoned and record.kind != "contract_published":
            return
        if record.kind == "contract_published":
            self._on_contract_published(chain, record)
        elif record.kind == "contract_call" and record.payload.get("ok"):
            method = record.payload.get("method")
            if method == "unlock":
                self._on_unlock_observed(record)
        elif record.kind == "secret_broadcast" and chain.chain_id == BROADCAST_CHAIN_ID:
            self._on_secret_broadcast(record)

    def _on_contract_published(self, chain: Blockchain, record: Record) -> None:
        payload = record.payload
        state = payload.get("state", {})
        arc_value = state.get("arc")
        if not arc_value:
            return
        arc: Arc = (arc_value[0], arc_value[1])
        if arc not in self.entering or arc in self.incoming_contract_ids:
            return
        expected_asset = self.assets[arc].asset_id
        if not is_correct_contract_state(state, self.spec, arc, expected_asset):
            # §4.5: "verifies that contract is a correct swap contract, and
            # abandons the protocol otherwise".
            self.abandoned = True
            self.trace.record(
                self.scheduler.now,
                tr.PROTOCOL_ABANDONED,
                self.address,
                arc=list(arc),
                reason="incorrect contract",
            )
            return
        self.incoming_contract_ids[arc] = payload["contract_id"]
        self.verified_incoming.add(arc)
        # A late-arriving contract can still be unlocked with known keys.
        for lock_index in list(self.known_hashkeys):
            self._schedule_unlocks(lock_index, only_arc=arc)
        self._maybe_advance_phase()

    def _maybe_advance_phase(self) -> None:
        if self.abandoned:
            return
        if len(self.verified_incoming) != len(self.entering):
            return
        if self.is_leader:
            if not self.phase_two_started:
                self._begin_phase_two()
        elif not self.published:
            # Phase One, follower step 2: all entering arcs verified.
            self.wake_after(
                self.profile.action_delay,
                self._publish_outgoing,
                label=f"{self.address}:publish",
            )

    # -- Phase Two: secret dissemination ----------------------------------------------------

    def _begin_phase_two(self) -> None:
        if self._maybe_crash(CrashPoint.BEFORE_PHASE_TWO):
            return
        self.phase_two_started = True
        assert self.secret is not None
        lock_index = self.spec.lock_index_of(self.address)
        hashkey = Hashkey.originate(lock_index, self.secret, self.keypair, self.scheme)
        self.known_hashkeys[lock_index] = hashkey
        self.trace.record(
            self.scheduler.now, tr.PHASE_STARTED, self.address, phase=2, lock_index=lock_index
        )
        if self.use_broadcast:
            self.wake_after(
                self.profile.action_delay,
                lambda: self._broadcast_secret(hashkey),
                label=f"{self.address}:broadcast",
            )
        self._schedule_unlocks(lock_index)

    def _broadcast_secret(self, hashkey: Hashkey) -> None:
        """§4.5 optimisation: publish the secret on the shared chain."""
        if not self.network.include_broadcast:
            return
        now = self.scheduler.now
        chain = self.network.broadcast_chain
        chain.publish_data(
            kind="secret_broadcast",
            author=self.address,
            payload={
                "lock_index": hashkey.lock_index,
                "secret": hashkey.secret,
                "leader": self.address,
                "base_signature": hashkey.sig_chain.layers[-1],
            },
            now=now,
        )
        self.trace.record(
            now, tr.SECRET_BROADCAST, self.address, lock_index=hashkey.lock_index
        )

    def _on_unlock_observed(self, record: Record) -> None:
        payload = record.payload
        state = payload.get("state", {})
        arc_value = state.get("arc")
        if not arc_value:
            return
        arc: Arc = (arc_value[0], arc_value[1])
        if arc in self.entering:
            # Our own unlock landed; claim handling is done at call time.
            return
        if arc not in self.leaving:
            return
        args = payload.get("args", {})
        try:
            observed = Hashkey.from_args(args)
        except (KeyError, InvalidHashkeyError):
            return
        self._learn_hashkey(observed)

    def _on_secret_broadcast(self, record: Record) -> None:
        if not self.use_broadcast:
            return
        payload = record.payload
        lock_index = payload.get("lock_index")
        if lock_index is None or lock_index in self.known_hashkeys:
            return
        leader = payload.get("leader")
        if leader != self.spec.leader_of_lock(lock_index):
            return
        if leader == self.address:
            return
        base = Hashkey(
            lock_index=lock_index,
            secret=payload["secret"],
            path=(leader,),
            sig_chain=SignatureChain(layers=(payload["base_signature"],)),
        )
        # The logical follower->leader arc (§4.5): extend once and use it.
        try:
            extended = base.extend(self.keypair, self.scheme)
        except InvalidHashkeyError:
            return
        self.known_hashkeys[lock_index] = extended
        self._schedule_unlocks(lock_index)

    def _learn_hashkey(self, observed: Hashkey) -> None:
        """§4.5: first observation of an unlocked leaving-arc hashlock."""
        lock_index = observed.lock_index
        if lock_index in self.known_hashkeys:
            return
        if self._maybe_crash(CrashPoint.BEFORE_PHASE_TWO):
            return
        if self.address in observed.path:
            # Lemma 4.8's second case: we already signed this key earlier,
            # so it must already be in known_hashkeys; nothing to do.
            return
        extended = observed.extend(self.keypair, self.scheme)
        self.known_hashkeys[lock_index] = extended
        self._schedule_unlocks(lock_index)

    def _schedule_unlocks(self, lock_index: int, only_arc: Arc | None = None) -> None:
        arcs = [only_arc] if only_arc is not None else list(self.entering)
        hashkey = self.known_hashkeys[lock_index]
        for arc in arcs:
            contract_id = self.incoming_contract_ids.get(arc)
            if contract_id is None:
                continue
            if lock_index in self.unlocked_incoming[arc]:
                continue
            if not self.should_unlock(arc, lock_index):
                continue
            self.wake_after(
                self.unlock_delay(arc, lock_index),
                lambda a=arc, cid=contract_id, hk=hashkey: self._send_unlock(a, cid, hk),
                label=f"{self.address}:unlock",
            )

    def should_unlock(self, arc: Arc, lock_index: int) -> bool:
        """Strategy hook: conforming parties unlock every entering arc."""
        return True

    def unlock_delay(self, arc: Arc, lock_index: int) -> int:
        """Strategy hook: ticks before the unlock lands (action delay)."""
        return self.profile.action_delay

    def _send_unlock(self, arc: Arc, contract_id: str, hashkey: Hashkey) -> None:
        if self.abandoned:
            return
        now = self.scheduler.now
        if now >= hashkey.deadline(self.spec):
            # A rational party does not submit an expired hashkey.
            return
        if hashkey.lock_index in self.unlocked_incoming[arc]:
            return
        chain = self.network.chain_for_arc(arc)
        contract = chain.contract(contract_id)
        if contract.is_halted:
            return
        try:
            chain.call(contract_id, "unlock", self.address, now, hashkey.to_args())
        except ContractError:
            return
        self.unlocked_incoming[arc].add(hashkey.lock_index)
        self._unlock_calls_sent += 1
        self.trace.record(
            now,
            tr.HASHLOCK_UNLOCKED,
            self.address,
            arc=list(arc),
            lock_index=hashkey.lock_index,
            path_length=hashkey.path_length,
        )
        first = self._unlock_calls_sent == 1
        if first and self._maybe_crash(CrashPoint.AFTER_FIRST_UNLOCK):
            return
        if len(self.unlocked_incoming[arc]) == self.spec.lock_count():
            self.wake_after(
                self.profile.action_delay,
                lambda a=arc, cid=contract_id: self._send_claim(a, cid),
                label=f"{self.address}:claim",
            )

    def _send_claim(self, arc: Arc, contract_id: str) -> None:
        if arc in self.claimed:
            return
        now = self.scheduler.now
        chain = self.network.chain_for_arc(arc)
        contract = chain.contract(contract_id)
        if contract.is_halted or not isinstance(contract, SwapContract):
            return
        if not contract.all_unlocked():
            return
        try:
            chain.call(contract_id, "claim", self.address, now)
        except ContractError:
            return
        self.claimed.add(arc)
        self.trace.record(now, tr.ARC_TRIGGERED, self.address, arc=list(arc))

    # -- refunds -------------------------------------------------------------------

    def _schedule_refund_watches(self, arc: Arc, contract_id: str) -> None:
        """Wake at each lock's final timeout to refund if still locked."""
        deadlines = sorted(
            {
                self.spec.lock_final_timeout(arc, i)
                for i in range(self.spec.lock_count())
            }
        )
        for deadline in deadlines:
            delay = max(0, deadline - self.scheduler.now) + self.profile.action_delay
            self.wake_after(
                delay,
                lambda a=arc, cid=contract_id: self._try_refund(a, cid),
                label=f"{self.address}:refund-watch",
            )

    def _try_refund(self, arc: Arc, contract_id: str) -> None:
        if arc in self.refunded:
            return
        now = self.scheduler.now
        chain = self.network.chain_for_arc(arc)
        contract = chain.contract(contract_id)
        if contract.is_halted or not isinstance(contract, SwapContract):
            return
        if not contract._refundable(now):  # noqa: SLF001 - free public read
            return
        try:
            chain.call(contract_id, "refund", self.address, now)
        except ContractError:
            return
        self.refunded.add(arc)
        self.trace.record(now, tr.ARC_REFUNDED, self.address, arc=list(arc))

    def __repr__(self) -> str:
        role = "leader" if self.is_leader else "follower"
        return f"SwapParty({self.address!r}, {role})"
