"""Deviating party strategies.

Each strategy subclasses :class:`~repro.core.party.SwapParty` and overrides
one or two hooks, modelling the misbehaviours the paper analyses:

* :class:`RefuseToPublishParty` — skips publishing some or all leaving
  contracts (the Lemma 4.11 collusion primitive);
* :class:`WithholdSecretParty` — a leader that deploys contracts but never
  reveals its secret (everyone times out into NoDeal);
* :class:`PrematureRevealParty` — a leader that starts Phase Two
  immediately, before Phase One completes ("If Alice (irrationally)
  reveals s before the first phase completes...", §1);
* :class:`SelectiveUnlockParty` — unlocks only chosen entering arcs,
  forgoing some of its own assets;
* :class:`LastMomentUnlockParty` — delays every unlock to just before the
  hashkey deadline (the §1 attack that breaks equal-timeout protocols;
  Lemma 4.8 shows the hashkey protocol tolerates it);
* :class:`WrongContractParty` — publishes contracts whose hashlocks do not
  match the spec (observers must abandon);
* :class:`GreedyClaimOnlyParty` — never publishes, but still claims
  whatever it can (a pure free-ride attempt).

Strategies are installed per-party through
:class:`~repro.core.protocol.SwapSimulation`'s ``strategies`` argument.
"""

from __future__ import annotations

from random import Random

from repro.core.contract import SwapContract
from repro.core.party import SwapParty
from repro.core.spec import SwapSpec
from repro.crypto.hashing import random_secret, sha256
from repro.digraph.digraph import Arc


class RefuseToPublishParty(SwapParty):
    """Publishes nothing on ``withheld_arcs`` (all leaving arcs by default).

    Still participates in Phase Two for whatever contracts exist, trying to
    collect entering assets — the primitive move of every free-riding
    coalition (Lemma 4.11's collusion).
    """

    def __init__(self, *args, withheld_arcs: set[Arc] | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.withheld_arcs = withheld_arcs  # None means "withhold everything"

    def should_publish(self, arc: Arc) -> bool:
        if self.withheld_arcs is None:
            return False
        return arc not in self.withheld_arcs


class WithholdSecretParty(SwapParty):
    """A leader that completes Phase One but never begins Phase Two."""

    def _begin_phase_two(self) -> None:
        return  # never reveal the secret


class PrematureRevealParty(SwapParty):
    """A leader that reveals its secret at the very start (irrational).

    §1: only the premature revealer can end up worse off — the protocol
    still protects everyone else, which bench E11 checks.
    """

    def start(self) -> None:
        super().start()
        if self.is_leader:
            # Begin Phase Two immediately, without waiting for contracts on
            # entering arcs.
            self.wake_after(
                self.profile.action_delay,
                self._premature_phase_two,
                label=f"{self.address}:premature",
            )

    def _premature_phase_two(self) -> None:
        if not self.phase_two_started:
            self.phase_two_started = True
            from repro.core.hashkey import Hashkey
            from repro.sim import trace as tr

            assert self.secret is not None
            lock_index = self.spec.lock_index_of(self.address)
            hashkey = Hashkey.originate(lock_index, self.secret, self.keypair, self.scheme)
            self.known_hashkeys[lock_index] = hashkey
            self.trace.record(
                self.scheduler.now,
                tr.PHASE_STARTED,
                self.address,
                phase=2,
                premature=True,
            )
            if self.use_broadcast:
                # Leak the secret to the world immediately — the §1 story
                # needs the secret out even before contracts exist.
                self._broadcast_secret(hashkey)
            self._schedule_unlocks(lock_index)

    def _maybe_advance_phase(self) -> None:
        # Keep the publishing side of the conforming logic, but Phase Two
        # has already (prematurely) started.
        if self.abandoned:
            return
        if len(self.verified_incoming) != len(self.entering):
            return
        if not self.is_leader and not self.published:
            self.wake_after(
                self.profile.action_delay,
                self._publish_outgoing,
                label=f"{self.address}:publish",
            )


class SelectiveUnlockParty(SwapParty):
    """Unlocks only the entering arcs in ``unlock_only`` (self-harming)."""

    def __init__(self, *args, unlock_only: set[Arc] | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.unlock_only = unlock_only if unlock_only is not None else set()

    def should_unlock(self, arc: Arc, lock_index: int) -> bool:
        return arc in self.unlock_only


class LastMomentUnlockParty(SwapParty):
    """Delays each unlock until ``margin`` ticks before its deadline.

    Against the hashkey protocol this is safe for everyone else: Lemma 4.8
    gives each predecessor on the path a full Δ to react, because *its*
    hashkey deadline is one Δ later.  Against the naive equal-timeout
    baseline the same behaviour strands the victim (bench E17).
    """

    def __init__(self, *args, margin: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.margin = margin

    def unlock_delay(self, arc: Arc, lock_index: int) -> int:
        hashkey = self.known_hashkeys[lock_index]
        deadline = hashkey.deadline(self.spec)
        margin = self.margin if self.margin is not None else max(1, self.spec.delta // 100)
        target = deadline - margin
        return max(self.profile.action_delay, target - self.scheduler.now)


class WrongContractParty(SwapParty):
    """Publishes contracts with forged hashlocks; observers must abandon."""

    def __init__(self, *args, rng: Random | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = rng if rng is not None else Random(0xBAD)

    def make_contract(self, arc: Arc) -> SwapContract:
        forged_locks = tuple(
            sha256(b"forged" + random_secret(self._rng)) for _ in self.spec.hashlocks
        )
        forged_spec = SwapSpec(
            digraph=self.spec.digraph,
            leaders=self.spec.leaders,
            hashlocks=forged_locks,
            start_time=self.spec.start_time,
            delta=self.spec.delta,
            diam=self.spec.diam,
            timeout_slack=self.spec.timeout_slack,
            directory=self.spec.directory,
            schemes=self.spec.schemes,
        )
        return SwapContract(forged_spec, arc, self.assets[arc])


class GreedyClaimOnlyParty(RefuseToPublishParty):
    """Never escrows anything; claims any entering contract it can unlock.

    Combines refuse-to-publish with full Phase-Two participation — the
    strongest individual free-ride attempt against the protocol.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("withheld_arcs", None)
        super().__init__(*args, **kwargs)
