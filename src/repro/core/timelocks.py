"""The single-leader protocol of §4.6: plain timeouts, no signatures.

When the swap digraph has a single leader ``v̂`` (so the follower
subdigraph is acyclic), hashkeys collapse to per-arc timeouts: arc
``(u, v)`` gets timeout ``(diam(D) + D(v, v̂) + 1)·Δ`` (Lemma 4.13), which
guarantees every conforming follower at least ``Δ`` between any leaving
arc's timeout and every entering arc's timeout.  Contracts shrink to the
classic hashed timelock contract (one hashlock, one deadline, no digital
signatures) — bench E15 quantifies the savings.

Figure 6's point is reproduced by :func:`assign_timeouts`: the assignment
exists iff the follower subdigraph is acyclic, i.e. the leader alone is a
feedback vertex set; otherwise :class:`TimeoutAssignmentError` explains
which cycle blocks it.

The module also provides the simulated party (:class:`SingleLeaderParty`)
and runner (:class:`SingleLeaderSimulation`) for this variant.  Both are
deliberately independent of the hashkey machinery so the two protocols can
be compared head-to-head; the runner additionally accepts an arbitrary
timeout assignment, which the *naive* baseline abuses to demonstrate the
attack that motivates hashkeys (see
:mod:`repro.baselines.naive_timelock`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chain.assets import Asset
from repro.chain.blockchain import Blockchain
from repro.chain.contracts import Contract
from repro.chain.ledger import Record
from repro.chain.network import ChainNetwork
from repro.core.protocol import SwapConfig, SwapResult
from repro.crypto.hashing import hash_secret, matches
from repro.digraph.digraph import Arc, Digraph, Vertex
from repro.digraph.paths import (
    diameter,
    find_cycle,
    is_strongly_connected,
    longest_path_length,
)
from repro.errors import (
    AssetError,
    AuthorizationError,
    ContractError,
    ContractStateError,
    NotStronglyConnectedError,
    SimulationError,
    TimeoutAssignmentError,
)
from repro.sim import trace as tr
from repro.sim.faults import CrashPoint, FaultPlan
from repro.sim.harness import SimulationHarness, derive_secret
from repro.sim.process import Process, ReactionProfile
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace

# ---------------------------------------------------------------------------
# Timeout assignment (Lemma 4.13 / Figure 6)
# ---------------------------------------------------------------------------


def assign_timeouts(
    digraph: Digraph,
    leader: Vertex,
    delta: int,
    start_time: int = 0,
    exact_limit: int = 14,
) -> dict[Arc, int]:
    """§4.6's assignment: arc ``(u, v)`` expires at
    ``start + (diam(D) + D(v, v̂) + 1)·Δ``.

    Raises :class:`TimeoutAssignmentError` when the follower subdigraph is
    cyclic (Figure 6, right): no Δ-gapped assignment exists across a
    follower cycle.
    """
    if not digraph.has_vertex(leader):
        raise TimeoutAssignmentError(f"unknown leader {leader!r}")
    followers = digraph.remove_vertices([leader])
    cycle = find_cycle(followers)
    if cycle is not None:
        raise TimeoutAssignmentError(
            f"follower subdigraph has cycle {cycle}; timeouts cannot keep a "
            "Δ gap across a cycle (Fig. 6) — use the hashkey protocol with "
            "more leaders"
        )
    diam = diameter(digraph, exact_limit=exact_limit)
    timeouts: dict[Arc, int] = {}
    for (u, v) in digraph.arcs:
        distance = longest_path_length(digraph, v, leader, exact_limit=exact_limit)
        timeouts[(u, v)] = start_time + (diam + distance + 1) * delta
    return timeouts


def verify_gap_property(
    digraph: Digraph, leader: Vertex, timeouts: dict[Arc, int], delta: int
) -> bool:
    """Lemma 4.13's conclusion: for every follower ``v``, each entering
    arc's timeout exceeds each leaving arc's timeout by at least ``Δ``."""
    for v in digraph.vertices:
        if v == leader:
            continue
        entering = [timeouts[a] for a in digraph.in_arcs(v)]
        leaving = [timeouts[a] for a in digraph.out_arcs(v)]
        if not entering or not leaving:
            continue
        if min(entering) < max(leaving) + delta:
            return False
    return True


def equal_timeouts(
    digraph: Digraph, delta: int, start_time: int = 0, multiple: int | None = None
) -> dict[Arc, int]:
    """The *naive* assignment: every arc expires at the same moment.

    Exists for any digraph — and is exactly what the §1 discussion warns
    about: "If Carol's contract with Bob were to expire at the same time as
    Bob's contract with Alice, then Carol could reveal s ... at the very
    last moment, leaving Bob no time to collect".  Used by the baseline.
    """
    if multiple is None:
        multiple = 2 * diameter(digraph)
    deadline = start_time + multiple * delta
    return {arc: deadline for arc in digraph.arcs}


# ---------------------------------------------------------------------------
# The classic hashed timelock contract (single hashlock, single deadline)
# ---------------------------------------------------------------------------


class SimpleTimelockContract(Contract):
    """The two-party HTLC of §4.1's opening: ``(h, t)`` plus an asset.

    ``unlock(secret)`` (counterparty, before ``t``) reveals the secret
    on-chain; ``claim`` transfers once unlocked; ``refund`` (party, at or
    after ``t``) returns the escrow while still locked.
    """

    CALLABLE = frozenset({"unlock", "refund", "claim"})

    def __init__(
        self,
        arc: Arc,
        asset: Asset,
        hashlock: bytes,
        timeout: int,
        start_time: int,
    ) -> None:
        super().__init__(asset)
        self.arc = arc
        self.party, self.counterparty = arc
        self.hashlock = hashlock
        self.timeout = timeout
        self.start_time = start_time
        self.unlocked = False
        self.revealed_secret: bytes | None = None
        self.unlock_time: int | None = None
        self.claimed = False
        self.refunded = False

    def unlock(self, caller: str, now: int, secret: bytes) -> bool:
        if caller != self.counterparty:
            raise AuthorizationError(
                f"unlock is counterparty-only ({self.counterparty}); called by {caller}"
            )
        self._require_live()
        if self.unlocked:
            return True
        if now >= self.timeout:
            raise ContractStateError(f"timed out at {self.timeout} (now {now})")
        if not matches(self.hashlock, secret):
            raise ContractStateError("secret does not match hashlock")
        self.unlocked = True
        self.revealed_secret = secret
        self.unlock_time = now
        return True

    def claim(self, caller: str, now: int) -> bool:
        if caller != self.counterparty:
            raise AuthorizationError(
                f"claim is counterparty-only ({self.counterparty}); called by {caller}"
            )
        self._require_live()
        if not self.unlocked:
            raise ContractStateError("hashlock still locked")
        assert self.chain is not None
        self.claimed = True
        self._halt()
        self.chain.release_escrow(self, self.counterparty, now)
        return True

    def refund(self, caller: str, now: int) -> bool:
        if caller != self.party:
            raise AuthorizationError(
                f"refund is party-only ({self.party}); called by {caller}"
            )
        self._require_live()
        if self.unlocked:
            raise ContractStateError("hashlock already unlocked; refund impossible")
        if now < self.timeout:
            raise ContractStateError(
                f"not yet timed out (timeout {self.timeout}, now {now})"
            )
        assert self.chain is not None
        self.refunded = True
        self._halt()
        self.chain.release_escrow(self, self.party, now)
        return True

    @property
    def triggered(self) -> bool:
        return self.claimed

    def state_view(self) -> dict[str, Any]:
        return {
            "arc": list(self.arc),
            "party": self.party,
            "counterparty": self.counterparty,
            "asset_id": self.asset.asset_id,
            "hashlock": self.hashlock.hex(),
            "timeout": self.timeout,
            "start_time": self.start_time,
            "unlocked": self.unlocked,
            "claimed": self.claimed,
            "refunded": self.refunded,
            "halted": self.is_halted,
        }

    def storage_size_bytes(self) -> int:
        """No digraph copy, no hashlock vector: O(1) storage per contract."""
        endpoint_bytes = len(self.party.encode()) + len(self.counterparty.encode())
        asset_bytes = len(self.asset.asset_id.encode())
        return 32 + 8 + 8 + 1 + endpoint_bytes + asset_bytes


# ---------------------------------------------------------------------------
# Published spec for the single-leader variant
# ---------------------------------------------------------------------------


@dataclass
class SingleLeaderSpec:
    """Common knowledge for a §4.6 swap: digraph, leader, hashlock, timeouts."""

    digraph: Digraph
    leader: Vertex
    hashlock: bytes
    timeouts: dict[Arc, int]
    start_time: int
    delta: int
    diam: int

    def __post_init__(self) -> None:
        if not is_strongly_connected(self.digraph):
            raise NotStronglyConnectedError(
                "swap digraphs must be strongly connected (Theorem 3.5)"
            )
        missing = [a for a in self.digraph.arcs if a not in self.timeouts]
        if missing:
            raise TimeoutAssignmentError(f"arcs without timeouts: {missing}")

    @property
    def leaders(self) -> tuple[Vertex, ...]:
        """Duck-type compatibility with :class:`~repro.core.spec.SwapSpec`."""
        return (self.leader,)

    def phase_two_bound(self) -> int:
        """All triggers happen by the latest arc timeout."""
        return max(self.timeouts.values())

    def expected_contract_state(self, arc: Arc, asset_id: str) -> dict[str, Any]:
        head, tail = arc
        return {
            "arc": [head, tail],
            "party": head,
            "counterparty": tail,
            "asset_id": asset_id,
            "hashlock": self.hashlock.hex(),
            "timeout": self.timeouts[arc],
            "start_time": self.start_time,
        }


# ---------------------------------------------------------------------------
# Party behaviour (§4.6 = §4.5 with secrets instead of hashkeys)
# ---------------------------------------------------------------------------


class SingleLeaderParty(Process):
    """Conforming participant of the single-leader timeout protocol."""

    def __init__(
        self,
        name: Vertex,
        spec: SingleLeaderSpec,
        network: ChainNetwork,
        assets: dict[Arc, Asset],
        trace: Trace,
        scheduler: Scheduler,
        profile: ReactionProfile,
        secret: bytes | None = None,
    ) -> None:
        super().__init__(name, scheduler, profile)
        self.address = name
        self.spec = spec
        self.network = network
        self.assets = assets
        self.trace = trace
        self.secret = secret
        self.is_leader = name == spec.leader
        if self.is_leader and secret is None:
            raise SimulationError(f"leader {name} needs its secret")
        self.entering = spec.digraph.in_arcs(name)
        self.leaving = spec.digraph.out_arcs(name)

        self.verified_incoming: set[Arc] = set()
        self.incoming_contract_ids: dict[Arc, str] = {}
        self.outgoing_contract_ids: dict[Arc, str] = {}
        self.known_secret: bytes | None = secret if self.is_leader else None
        self.claimed: set[Arc] = set()
        self.refunded: set[Arc] = set()
        self.published = False
        self.abandoned = False
        self.crash_plan = None

    # -- crash hook (same contract points as the general party) ---------------------

    def _maybe_crash(self, point: CrashPoint) -> bool:
        if self.crash_plan is not None and self.crash_plan.at_point is point:
            self.halt()
            self.trace.record(
                self.scheduler.now, tr.PARTY_CRASHED, self.address, point=point.value
            )
            return True
        return False

    # -- Phase One --------------------------------------------------------------------

    def start(self) -> None:
        # Leaders publish at T with contracts prepared in advance (§4.2
        # gives them at least Δ of warning) — see SwapParty.start.
        if self._maybe_crash(CrashPoint.AT_START):
            return
        if self.is_leader:
            self._publish_outgoing()

    def _publish_outgoing(self) -> None:
        if self.abandoned or self.published:
            return
        self.published = True
        now = self.scheduler.now
        for arc in self.leaving:
            if not self.should_publish(arc):
                continue
            contract = self.make_contract(arc)
            chain = self.network.chain_for_arc(arc)
            try:
                contract_id = chain.publish_contract(contract, self.address, now)
            except (AssetError, ContractError) as error:
                self.trace.record(
                    now, tr.CONTRACT_REJECTED, self.address, arc=list(arc), error=str(error)
                )
                continue
            self.outgoing_contract_ids[arc] = contract_id
            self.trace.record(
                now, tr.CONTRACT_PUBLISHED, self.address, arc=list(arc), contract_id=contract_id
            )
            delay = max(0, self.spec.timeouts[arc] - now) + self.profile.action_delay
            self.wake_after(
                delay,
                lambda a=arc, cid=contract_id: self._try_refund(a, cid),
                label=f"{self.address}:refund-watch",
            )
        self._maybe_crash(CrashPoint.AFTER_PHASE_ONE_PUBLISH)

    def should_publish(self, arc: Arc) -> bool:
        return True

    def make_contract(self, arc: Arc) -> SimpleTimelockContract:
        return SimpleTimelockContract(
            arc=arc,
            asset=self.assets[arc],
            hashlock=self.spec.hashlock,
            timeout=self.spec.timeouts[arc],
            start_time=self.spec.start_time,
        )

    # -- observation dispatch -------------------------------------------------------------

    def on_chain_record(self, chain: Blockchain, record: Record, landed_at: int) -> None:
        if record.kind == "contract_published":
            self._on_contract_published(record)
        elif record.kind == "contract_call" and record.payload.get("ok"):
            if record.payload.get("method") == "unlock":
                self._on_unlock_observed(record)

    def _on_contract_published(self, record: Record) -> None:
        state = record.payload.get("state", {})
        arc_value = state.get("arc")
        if not arc_value:
            return
        arc: Arc = (arc_value[0], arc_value[1])
        if arc not in self.entering or arc in self.incoming_contract_ids:
            return
        expected = self.spec.expected_contract_state(arc, self.assets[arc].asset_id)
        if not all(state.get(k) == v for k, v in expected.items()):
            self.abandoned = True
            self.trace.record(
                self.scheduler.now,
                tr.PROTOCOL_ABANDONED,
                self.address,
                arc=list(arc),
                reason="incorrect contract",
            )
            return
        self.incoming_contract_ids[arc] = record.payload["contract_id"]
        self.verified_incoming.add(arc)
        if self.known_secret is not None:
            self._schedule_unlock(arc)
        self._maybe_advance_phase()

    def _maybe_advance_phase(self) -> None:
        if self.abandoned or len(self.verified_incoming) != len(self.entering):
            return
        if self.is_leader:
            if self._maybe_crash(CrashPoint.BEFORE_PHASE_TWO):
                return
            self.trace.record(self.scheduler.now, tr.PHASE_STARTED, self.address, phase=2)
            for arc in self.entering:
                self._schedule_unlock(arc)
        elif not self.published:
            self.wake_after(
                self.profile.action_delay, self._publish_outgoing, label=f"{self.address}:publish"
            )

    def _on_unlock_observed(self, record: Record) -> None:
        state = record.payload.get("state", {})
        arc_value = state.get("arc")
        if not arc_value:
            return
        arc: Arc = (arc_value[0], arc_value[1])
        if arc not in self.leaving or self.known_secret is not None:
            return
        if self._maybe_crash(CrashPoint.BEFORE_PHASE_TWO):
            return
        secret = record.payload.get("args", {}).get("secret")
        if secret is None or not matches(self.spec.hashlock, secret):
            return
        self.known_secret = secret
        for arc_in in self.entering:
            if arc_in in self.incoming_contract_ids:
                self._schedule_unlock(arc_in)

    # -- Phase Two actions -----------------------------------------------------------------

    def _schedule_unlock(self, arc: Arc) -> None:
        if not self.should_unlock(arc):
            return
        self.wake_after(
            self.unlock_delay(arc),
            lambda a=arc: self._send_unlock(a),
            label=f"{self.address}:unlock",
        )

    def should_unlock(self, arc: Arc) -> bool:
        return True

    def unlock_delay(self, arc: Arc) -> int:
        return self.profile.action_delay

    def _send_unlock(self, arc: Arc) -> None:
        if self.abandoned or self.known_secret is None:
            return
        contract_id = self.incoming_contract_ids.get(arc)
        if contract_id is None or arc in self.claimed:
            return
        now = self.scheduler.now
        if now >= self.spec.timeouts[arc]:
            return  # rational parties do not submit doomed transactions
        chain = self.network.chain_for_arc(arc)
        contract = chain.contract(contract_id)
        if contract.is_halted:
            return
        try:
            if not getattr(contract, "unlocked", False):
                chain.call(contract_id, "unlock", self.address, now, {"secret": self.known_secret})
                self.trace.record(
                    now, tr.HASHLOCK_UNLOCKED, self.address, arc=list(arc), lock_index=0
                )
        except ContractError:
            return
        self.wake_after(
            self.profile.action_delay,
            lambda a=arc, cid=contract_id: self._send_claim(a, cid),
            label=f"{self.address}:claim",
        )

    def _send_claim(self, arc: Arc, contract_id: str) -> None:
        if arc in self.claimed:
            return
        now = self.scheduler.now
        chain = self.network.chain_for_arc(arc)
        contract = chain.contract(contract_id)
        if contract.is_halted or not getattr(contract, "unlocked", False):
            return
        try:
            chain.call(contract_id, "claim", self.address, now)
        except ContractError:
            return
        self.claimed.add(arc)
        self.trace.record(now, tr.ARC_TRIGGERED, self.address, arc=list(arc))

    def _try_refund(self, arc: Arc, contract_id: str) -> None:
        if arc in self.refunded:
            return
        now = self.scheduler.now
        chain = self.network.chain_for_arc(arc)
        contract = chain.contract(contract_id)
        if contract.is_halted or getattr(contract, "unlocked", False):
            return
        if now < self.spec.timeouts[arc]:
            return
        try:
            chain.call(contract_id, "refund", self.address, now)
        except ContractError:
            return
        self.refunded.add(arc)
        self.trace.record(now, tr.ARC_REFUNDED, self.address, arc=list(arc))


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


class SingleLeaderSimulation:
    """Build and run a §4.6 single-leader, signature-free swap.

    ``timeouts`` defaults to the safe §4.6 assignment; baselines pass a
    different (broken) assignment to reproduce the attacks.
    """

    def __init__(
        self,
        digraph: Digraph,
        leader: Vertex | None = None,
        config: SwapConfig | None = None,
        faults: FaultPlan | None = None,
        strategies: dict[Vertex, Any] | None = None,
        timeouts: dict[Arc, int] | None = None,
        party_class: type[SingleLeaderParty] = SingleLeaderParty,
    ) -> None:
        self.config = config or SwapConfig()
        self.faults = faults or FaultPlan.none()
        self.strategies = strategies or {}
        self.harness = SimulationHarness.for_config(
            digraph,
            self.config,
            include_broadcast=False,
            connectivity_message="swap digraphs must be strongly connected",
        )
        self.digraph = digraph
        self.network = self.harness.network
        self.assets = self.harness.assets
        self.scheduler = self.harness.scheduler
        self.trace = self.harness.trace
        start = self.config.resolved_start()

        if leader is None:
            leader = _find_single_leader(digraph)
        self.leader = leader

        if timeouts is None:
            timeouts = assign_timeouts(
                digraph, leader, self.config.delta, start, self.config.exact_limit
            )
        diam = diameter(digraph, exact_limit=self.config.exact_limit)
        secret = derive_secret("sl-secret", self.config.seed, leader)
        self.secret = secret
        self.spec = SingleLeaderSpec(
            digraph=digraph,
            leader=leader,
            hashlock=hash_secret(secret),
            timeouts=timeouts,
            start_time=start,
            delta=self.config.delta,
            diam=diam,
        )

        def build_party(vertex: Vertex, profile: ReactionProfile) -> SingleLeaderParty:
            entry = self.strategies.get(vertex)
            if entry is None:
                cls, extra = party_class, {}
            elif isinstance(entry, tuple):
                cls, extra = entry[0], dict(entry[1])
            else:
                cls, extra = entry, {}
            return cls(
                name=vertex,
                spec=self.spec,
                network=self.network,
                assets=self.assets,
                trace=self.trace,
                scheduler=self.scheduler,
                profile=profile,
                secret=secret if vertex == leader else None,
                **extra,
            )

        self.parties: dict[Vertex, SingleLeaderParty] = self.harness.build_parties(
            build_party
        )
        self.harness.install_faults(self.faults)
        self.harness.wire_observations()
        self._ran = False

    def prepared(self):
        """``(harness, start_time, finalize)`` for the execution-session
        layer (:mod:`repro.api.execution`)."""
        return self.harness, self.spec.start_time, self._collect

    def run(self) -> SwapResult:
        if self._ran:
            raise SimulationError("a SingleLeaderSimulation instance runs once")
        self._ran = True
        events = self.harness.run_to_quiescence(self.spec.start_time)
        return self._collect(events)

    def _collect(self, events_fired: int) -> SwapResult:
        conforming = frozenset(
            v
            for v in self.digraph.vertices
            if type(self.parties[v]) is SingleLeaderParty
            and v not in self.faults.crashes
        )
        return self.harness.collect(
            spec=self.spec,
            config=self.config,
            conforming=conforming,
            events_fired=events_fired,
        )


def _find_single_leader(digraph: Digraph) -> Vertex:
    """A vertex that alone forms a feedback vertex set, if any."""
    from repro.digraph.feedback import is_feedback_vertex_set

    for vertex in digraph.vertices:
        if is_feedback_vertex_set(digraph, {vertex}):
            return vertex
    raise TimeoutAssignmentError(
        "no single vertex is a feedback vertex set; the §4.6 variant does "
        "not apply (use the general hashkey protocol)"
    )


def run_single_leader_swap(
    digraph: Digraph,
    leader: Vertex | None = None,
    config: SwapConfig | None = None,
    faults: FaultPlan | None = None,
    strategies: dict[Vertex, Any] | None = None,
    timeouts: dict[Arc, int] | None = None,
) -> SwapResult:
    """Convenience wrapper mirroring :func:`repro.core.protocol.run_swap`."""
    return SingleLeaderSimulation(
        digraph,
        leader=leader,
        config=config,
        faults=faults,
        strategies=strategies,
        timeouts=timeouts,
    ).run()
