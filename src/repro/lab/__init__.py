"""repro.lab: workload generation + a persistent, resumable run store.

The lab turns the :mod:`repro.api` pipeline into an experiment factory:

* **Workloads** — named, seeded topology families crossed with
  adversary mixes expand into deterministic scenario grids
  (:mod:`repro.lab.workloads`, :mod:`repro.lab.registry`);
* **Store** — every run is content-addressed by
  :func:`repro.api.sweep.run_key` and persisted to JSONL or SQLite
  (:mod:`repro.lab.store`), so ``run_sweep(..., store=...)`` skips
  everything it has already computed and interrupted sweeps resume;
  sharded stores combine via :meth:`RunStore.merge_from`;
* **Analytics** — stored runs aggregate into per-engine × per-family ×
  per-mix rate tables and engine head-to-heads
  (:mod:`repro.lab.analytics`; ``python -m repro lab stats``).

Quickstart::

    from repro.api import run_sweep
    from repro.lab import Workload, build_sweep, open_store

    sweep = build_sweep(Workload("cycle", {"n": [3, 5, 8]},
                                 mixes=("all-conforming", "phase-crash")))
    with open_store("runs.sqlite") as store:
        report = run_sweep(sweep, store=store)   # cold: executes all
        again = run_sweep(sweep, store=store)    # warm: executes zero
        assert again.executed == 0

The same flows are scriptable via
``python -m repro lab run|ls|show|diff|stats|merge``.
"""

from repro.lab.analytics import (
    DIMENSIONS,
    GroupStats,
    RunFacts,
    aggregate,
    collect_facts,
    compare,
    dimensions,
    entry_facts,
    format_rows,
    format_table,
    parse_lab_name,
    percentile,
    stats_payload,
    timing_of,
)
from repro.lab.registry import (
    get_family,
    get_mix,
    get_preset,
    get_timing,
    list_families,
    list_mixes,
    list_presets,
    list_timings,
    register_family,
    register_mix,
    register_preset,
    register_timing,
)
from repro.lab.bisect import BisectResult, bisect_all_deal_boundary
from repro.lab.store import (
    JsonlStore,
    MemoryStore,
    RunStore,
    SqliteStore,
    open_store,
)
from repro.lab.workloads import (
    AdversaryMix,
    TimingProfile,
    TopologyFamily,
    Workload,
    build_sweep,
    expand_grid,
    impossibility_evidence,
)

__all__ = [
    "DIMENSIONS",
    "GroupStats",
    "RunFacts",
    "aggregate",
    "collect_facts",
    "compare",
    "dimensions",
    "entry_facts",
    "format_rows",
    "format_table",
    "parse_lab_name",
    "percentile",
    "stats_payload",
    "timing_of",
    "AdversaryMix",
    "TimingProfile",
    "TopologyFamily",
    "Workload",
    "build_sweep",
    "expand_grid",
    "impossibility_evidence",
    "get_family",
    "get_mix",
    "get_preset",
    "get_timing",
    "list_families",
    "list_mixes",
    "list_presets",
    "list_timings",
    "register_family",
    "register_mix",
    "register_preset",
    "register_timing",
    "BisectResult",
    "bisect_all_deal_boundary",
    "JsonlStore",
    "MemoryStore",
    "RunStore",
    "SqliteStore",
    "open_store",
]
