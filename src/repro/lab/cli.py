"""The ``python -m repro lab`` command line.

Subcommands::

    lab run       expand a workload (preset or --family) and execute it
                  through the content-addressed store; warm re-runs
                  execute zero engines; --fast-path answers fully-
                  covered scenarios from the closed-form analytic
                  engine without simulating; --fleet N drains the
                  workload with N local worker processes coordinated
                  by the claim/lease protocol (repro.fleet) instead of
                  the in-process pool
    lab work      run one fleet worker loop against a shared SQLite
                  store: claim a chunk, execute it (fast path
                  honoured), heartbeat, commit atomically; exits when
                  the queue drains.  Refuses JSONL/:memory: stores
                  (no concurrent-writer safety)
    lab fleet     inspect fleet coordination state (`fleet status`:
                  chunk claim/lease table, worker heartbeat ages;
                  --json for the machine-readable snapshot)
    lab check     statically verify workloads without executing them:
                  structural diagnostics + closed-form predictions
                  (repro.analysis.protocol); --verify cross-checks
                  predictions against reports — reusing stored reports
                  when the store already holds them, executing only the
                  residue (--fast-path synthesizes full-coverage
                  residue closed-form)
    lab bisect    binary-search a timing knob (stragglers `violation`)
                  per topology family to the all-Deal boundary
    lab ls        list stored runs (key, engine, scenario, verdict)
    lab show      print one stored run by key prefix (--json for raw)
    lab diff      field-by-field comparison of two stored runs
    lab stats     cross-sweep aggregates (rates, percentiles, failure
                  taxonomy) grouped by engine/family/mix/timing/path
    lab merge     absorb shard stores into one (newest record wins)
    lab families  the registered topology families and their params
    lab mixes     the registered adversary mixes
    lab timings   the registered timing profiles
    lab presets   the bundled workload presets

Examples::

    python -m repro lab run --preset smoke
    python -m repro lab run --family erdos-renyi --grid n=6,8 p=0.2 \\
        --mix all-conforming --mix phase-crash --engine herlihy
    python -m repro lab run --preset smoke --timing jittered
    python -m repro lab check                      # every family, statically
    python -m repro lab check --family wheel --grid rim=4,6 --verify
    python -m repro lab check --preset topologies --json
    python -m repro lab bisect --knob violation --family cycle --family clique
    python -m repro lab bisect --family wheel --timing-kind adaptive-stragglers
    python -m repro lab ls
    python -m repro lab show 3f2a
    python -m repro lab diff 3f2a 9c41
    python -m repro lab run --preset smoke --fast-path
    python -m repro lab check --verify --fast-path
    python -m repro lab stats --by engine,mix
    python -m repro lab stats --by timing
    python -m repro lab stats --by path          # analytic vs simulated
    python -m repro lab stats --by verdict         # predicted vs observed
    python -m repro lab stats --compare herlihy naive-timelock --json
    python -m repro lab merge all.sqlite shard1.jsonl shard2.sqlite
    python -m repro lab run --preset smoke --fleet 4 --store fleet.sqlite
    python -m repro lab work --store fleet.sqlite --lease-ttl 10
    python -m repro lab fleet status --store fleet.sqlite --json

The store defaults to ``.lab/runs.sqlite`` under the current directory;
``--store`` accepts any ``*.sqlite``/``*.jsonl`` path or ``:memory:``.
Errors go to stderr with exit status 1.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any, Sequence

from repro.api.report import RunReport
from repro.api.sweep import run_key, run_sweep
from repro.errors import LabError, ReproError
from repro.lab.analytics import (
    aggregate,
    check_dimensions,
    collect_facts,
    compare,
    compare_table,
    format_rows,
    stats_payload,
    stats_table,
)
from repro.lab.registry import (
    get_family,
    get_mix,
    get_preset,
    get_timing,
    list_families,
    list_mixes,
    list_presets,
    list_timings,
)
from repro.lab.store import JsonlStore, RunStore, _entry_identity, open_store
from repro.lab.workloads import Workload, build_sweep

DEFAULT_STORE = ".lab/runs.sqlite"


def _parse_grid(pairs: Sequence[str]) -> dict[str, Any]:
    """``["n=3,5", "p=0.2"]`` → ``{"n": [3, 5], "p": 0.2}``."""
    grid: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise LabError(f"--grid expects key=value, got {pair!r}")
        values = [_parse_atom(v) for v in raw.split(",") if v != ""]
        if not values:
            raise LabError(f"--grid {key} has no values")
        grid[key] = values if len(values) > 1 else values[0]
    return grid


def _parse_atom(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


# One table emitter for the whole repo (CLI, benches, scripts).
_format_rows = format_rows


def _open_existing(path: str) -> RunStore:
    """Open a store that must already exist.

    Read-only subcommands go through this instead of
    :func:`open_store`, which would silently create an empty store for
    a typo'd path — a false "empty" answer plus a junk file on disk.
    """
    if str(path) != ":memory:" and not Path(path).exists():
        raise LabError(f"no such store: {path}")
    return open_store(path)


def _resolve_key(store: RunStore, prefix: str) -> str:
    matches = store.find(prefix)
    if not matches:
        raise LabError(f"no stored run matches key prefix {prefix!r}")
    if len(matches) > 1:
        shown = ", ".join(k[:12] for k in matches[:8])
        raise LabError(
            f"key prefix {prefix!r} is ambiguous ({len(matches)} matches: "
            f"{shown}{', ...' if len(matches) > 8 else ''})"
        )
    return matches[0]


def _entry_row(key: str, entry: dict) -> list[object]:
    engine, name = _entry_identity(entry)
    if entry.get("ok"):
        report = RunReport.from_dict(entry["report"])
        verdict = "all-Deal" if report.all_deal() else (
            "safe" if report.conforming_acceptable() else "UNSAFE"
        )
        completion = report.completion_time
    else:
        verdict = f"error:{entry.get('error_type')}"
        completion = None
    return [
        key[:12], engine, name or "-", verdict,
        "-" if completion is None else completion,
    ]


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    if args.preset:
        workloads = list(get_preset(args.preset))
        title = f"preset:{args.preset}"
    elif args.family:
        workloads = [
            Workload(
                args.family,
                _parse_grid(args.grid),
                mixes=tuple(args.mix) if args.mix else ("all-conforming",),
                engines=tuple(args.engine) if args.engine else ("herlihy",),
            )
        ]
        title = f"family:{args.family}"
    else:
        raise LabError("lab run needs --preset or --family")
    if args.timing:
        # Like --seed, --timing replaces every workload's timing axis
        # (names validated up front so typos fail before any engine runs).
        for name in args.timing:
            get_timing(name)
        workloads = [
            replace(w, timings=tuple(args.timing)) for w in workloads
        ]
    # --seed replaces every workload's seed; unset keeps their defaults.
    sweep = build_sweep(workloads, name=title, base_seed=args.seed)
    if args.fleet:
        return _run_fleet_drain(args, sweep)
    progress = _progress_printer() if args.progress else None
    if args.no_store:
        report = run_sweep(
            sweep, parallel=not args.serial, max_workers=args.workers,
            progress=progress, fast_path=args.fast_path,
        )
        print(report.summary())
        print(f"store: disabled (--no-store) — executed {report.executed}")
        return 0
    with open_store(args.store) as store:
        report = run_sweep(
            sweep,
            parallel=not args.serial,
            max_workers=args.workers,
            store=store,
            progress=progress,
            fast_path=args.fast_path,
        )
        total = len(store)
    print(report.summary())
    print(
        f"store: {args.store} — executed {report.executed}, "
        f"cached {report.cached}, analytic {report.analytic}, "
        f"{total} run(s) stored"
    )
    return 0


def _run_fleet_drain(args: argparse.Namespace, sweep) -> int:
    """``lab run --fleet N``: drain the sweep with N worker processes.

    The claim/lease coordination lives in the SQLite store itself (see
    :mod:`repro.fleet`), so the drained store is byte-identical to what
    a serial ``lab run`` against the same store would hold — ``lab
    stats``/``lab merge`` work on it unchanged.
    """
    from repro.fleet import FleetConfig, run_fleet

    if args.no_store:
        raise LabError(
            "--fleet coordinates workers through the store; "
            "it cannot be combined with --no-store"
        )
    config = FleetConfig(
        lease_ttl=args.lease_ttl,
        skew_grace=args.skew_grace,
        chunk_size=args.chunk_size,
    )
    fleet_report = run_fleet(
        sweep,
        args.store,
        workers=args.fleet,
        config=config,
        fast_path=args.fast_path,
    )
    receipt = fleet_report.receipt
    counts = fleet_report.status.get("counts", {})
    print(
        f"fleet: {args.fleet} worker(s) drained {receipt.enqueued} run(s) "
        f"in {fleet_report.wall_seconds:.2f}s "
        f"(warm {receipt.warm}, already queued {receipt.queued})"
    )
    print(
        f"store: {args.store} — {counts.get('done', 0)} chunk(s) done, "
        f"{counts.get('items_done', 0)} item(s) recorded; "
        f"inspect with `lab stats --store {args.store}`"
    )
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    """One worker loop: claim → execute → heartbeat → commit, until
    the shared queue drains.  This is what ``--fleet`` spawns N of."""
    from repro.fleet import FleetConfig, FleetWorker, ensure_fleet_path

    # ensure_fleet_path refuses JSONL/:memory: *before* the existence
    # check so the unsafe-backend error names the real problem.
    resolved = ensure_fleet_path(args.store)
    if not resolved.exists():
        raise LabError(
            f"no such fleet store: {args.store} (the driver — `lab run "
            "--fleet` — creates and fills it before workers start)"
        )
    config = FleetConfig(
        lease_ttl=args.lease_ttl,
        skew_grace=args.skew_grace,
        chunk_size=args.chunk_size,
    )
    with FleetWorker(
        resolved,
        config=config,
        worker_id=args.worker_id,
        fast_path=args.fast_path,
    ) as worker:
        stats = worker.run(max_chunks=args.max_chunks)
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"worker {stats.worker_id}: {stats.chunks_committed} chunk(s), "
        f"{stats.items_committed} item(s) committed in "
        f"{stats.wall_seconds:.2f}s (claims {stats.claims}, leases lost "
        f"{stats.leases_lost}, idle waits {stats.idle_waits})"
    )
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.fleet import FleetCoordinator, ensure_fleet_path

    resolved = ensure_fleet_path(args.store)
    if not resolved.exists():
        raise LabError(f"no such store: {args.store}")
    with FleetCoordinator(resolved) as coordinator:
        status = coordinator.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status["counts"]
    print(f"store: {status['store']}")
    print(
        f"chunks: {counts['pending']} pending, {counts['leased']} leased, "
        f"{counts['done']} done — items {counts['items_done']}/"
        f"{counts['items_queued']}"
    )
    if status["chunks"]:
        print(_format_rows(
            ["chunk", "seq", "size", "state", "owner", "attempts", "lease"],
            [
                [
                    chunk["chunk_id"][:12],
                    chunk["seq"],
                    chunk["size"],
                    chunk["state"],
                    chunk["owner"] or "-",
                    chunk["attempts"],
                    "-" if chunk["lease_expires_in"] is None
                    else f"{chunk['lease_expires_in']:+.1f}s",
                ]
                for chunk in status["chunks"]
            ],
        ))
    if status["workers"]:
        print(_format_rows(
            ["worker", "seen", "chunks", "items"],
            [
                [
                    worker["worker_id"],
                    f"{worker['seen_age']:.1f}s ago",
                    worker["chunks_done"],
                    worker["items_done"],
                ]
                for worker in status["workers"]
            ],
        ))
    return 0


def _progress_printer():
    """A ``run_sweep(progress=...)`` callback printing one line per tick."""

    def show(tick) -> None:
        milestones = ",".join(
            f"{kind.split('-')[0]}={count}"
            for kind, count in sorted(tick.milestones.items())
        )
        note = f" [{milestones}]" if milestones else ""
        if tick.fresh:
            print(f"  {tick.completed}/{tick.total} (+{tick.fresh}){note}")
        else:
            print(f"  {tick.completed}/{tick.total} ({tick.cached} cached)")

    return show


def _check_workloads(args: argparse.Namespace) -> list[Workload]:
    """The workloads ``lab check`` analyzes (default: every family)."""
    if args.preset:
        return list(get_preset(args.preset))
    if args.family:
        return [
            Workload(
                args.family,
                _parse_grid(args.grid),
                mixes=tuple(args.mix) if args.mix else ("all-conforming",),
                engines=tuple(args.engine) if args.engine else ("herlihy",),
            )
        ]
    return [
        Workload(name, dict(get_family(name).defaults))
        for name in list_families()
    ]


def _verify_prediction(
    engine: str,
    scenario,
    analysis,
    stored: dict | None = None,
    fast_path: bool = False,
) -> tuple[str, list[str], str]:
    """Execute ``scenario`` and compare the report to the static analysis.

    Returns ``(status, mismatches, source)`` with status ``"ok"``,
    ``"skip"`` (coverage none on a valid scenario — nothing checkable),
    or ``"FAIL"``.  Full-coverage predictions must byte-match the
    report; verdict-only coverage checks the end state; invalid
    scenarios must be refused by the engine (the analyzer and the
    engines agree on what is runnable).

    ``stored`` is this run's already-recorded store entry, when one
    exists under the same run key: a successful entry's report is
    cross-checked as-is instead of re-executing the engine, and a
    failure entry *is* the refusal an invalid scenario demands.
    ``fast_path`` lets full-coverage residue come from the closed-form
    synthesizer instead of the simulator.  ``source`` says which route
    produced the evidence: ``stored``, ``analytic``, ``executed``, or
    ``-`` (nothing ran).
    """
    from repro.analysis.protocol import (
        COVERAGE_FULL,
        COVERAGE_VERDICT,
        VERDICT_INVALID,
    )
    from repro.api.engine import get_engine

    if analysis.verdict == VERDICT_INVALID:
        if stored is not None and not stored.get("ok"):
            return "ok", [], "stored"
        try:
            get_engine(engine).run(scenario)
        except ReproError:
            return "ok", [], "executed"
        return "FAIL", ["engine ran a scenario the analyzer called invalid"], "executed"
    if analysis.coverage not in (COVERAGE_VERDICT, COVERAGE_FULL):
        return "skip", [], "-"
    if stored is not None and stored.get("ok"):
        report = RunReport.from_dict(stored["report"])
        source = "stored"
    elif fast_path and analysis.coverage == COVERAGE_FULL:
        from repro.analysis.engine import synthesize_report

        report = synthesize_report(scenario, analysis.prediction)
        source = "analytic"
    else:
        report = get_engine(engine).run(scenario)
        source = "executed"
    if analysis.coverage == COVERAGE_VERDICT:
        if report.all_deal():
            return (
                "FAIL",
                ["predicted not-all-deal but every party ended Deal"],
                source,
            )
        return "ok", [], source
    prediction = analysis.prediction
    checks: list[tuple[str, object, object]] = [
        ("leaders", prediction.leaders, tuple(report.leaders)),
        ("completion_time", prediction.completion_time, report.completion_time),
        ("phase_two_bound", prediction.phase_two_bound, report.phase_two_bound),
        ("unlock_calls", prediction.unlock_calls, report.unlock_calls),
        (
            "contract_storage_bytes",
            prediction.contract_storage_bytes,
            report.contract_storage_bytes,
        ),
        ("all_deal", True, report.all_deal()),
    ]
    # A stored report dict carries no raw milestone stream; its counts
    # were recorded beside the report (and pre-session entries recorded
    # neither — nothing to compare for them).
    observed_milestones = (
        stored.get("milestones")
        if source == "stored" and stored is not None
        else report.milestone_counts()
    )
    if observed_milestones is not None:
        checks.append(
            ("milestone_counts", prediction.milestone_counts, dict(observed_milestones))
        )
    mismatches = [
        f"{field}: predicted {predicted!r}, observed {observed!r}"
        for field, predicted, observed in checks
        if predicted != observed
    ]
    return ("FAIL", mismatches, source) if mismatches else ("ok", [], source)


def _check_store(args: argparse.Namespace) -> RunStore | None:
    """The store ``lab check --verify`` reuses reports from, or ``None``.

    A missing *default* store just means a cold verify (check must work
    in a fresh tree); an explicitly named store that does not exist is a
    typo and errors like every read-only subcommand.  ``:memory:`` is
    always empty, so it degrades to cold too.
    """
    if args.store == ":memory:":
        return None
    if not Path(args.store).exists():
        if args.store != DEFAULT_STORE:
            raise LabError(f"no such store: {args.store}")
        return None
    return open_store(args.store)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.protocol import analyze_scenario

    workloads = _check_workloads(args)
    if args.timing:
        for name in args.timing:
            get_timing(name)
        workloads = [replace(w, timings=tuple(args.timing)) for w in workloads]
    sweep = build_sweep(workloads, name="check", base_seed=args.seed)
    rows: list[list[object]] = []
    payload: list[dict[str, Any]] = []
    errors = 0
    failed: list[tuple[str, list[str]]] = []
    sources: dict[str, int] = {}
    store = _check_store(args) if args.verify else None
    try:
        for engine, scenario in sweep.items():
            analysis = analyze_scenario(scenario, engine=engine)
            if not analysis.ok():
                errors += 1
            status, mismatches, source = ("-", [], "-")
            if args.verify:
                stored = (
                    store.get(run_key(engine, scenario))
                    if store is not None
                    else None
                )
                status, mismatches, source = _verify_prediction(
                    engine, scenario, analysis,
                    stored=stored, fast_path=args.fast_path,
                )
                if source != "-":
                    sources[source] = sources.get(source, 0) + 1
                if status == "FAIL":
                    failed.append((scenario.label(), mismatches))
            prediction = analysis.prediction
            if args.json:
                entry: dict[str, Any] = {
                    "engine": engine,
                    "scenario": scenario.label(),
                    "analysis": analysis.to_dict(),
                }
                if args.verify:
                    entry["verify"] = {
                        "status": status,
                        "mismatches": mismatches,
                        "source": source,
                    }
                payload.append(entry)
                continue
            rows.append(
                [
                    scenario.label(),
                    engine,
                    analysis.coverage,
                    analysis.verdict,
                    "-" if prediction is None else prediction.completion_time,
                    "-"
                    if prediction is None
                    else f"{prediction.completion_in_delta():g}Δ",
                    len(analysis.diagnostics),
                    *([status] if args.verify else []),
                ]
            )
    finally:
        if store is not None:
            store.close()
    if args.json:
        print(json.dumps({"checks": payload}, indent=2, sort_keys=True))
    else:
        headers = [
            "scenario", "engine", "coverage", "verdict", "t(pred)",
            "span/Δ", "diags",
        ]
        if args.verify:
            headers.append("verify")
        print(_format_rows(headers, rows))
        checked = len(rows)
        note = f"{checked} scenario(s) checked, {errors} with errors"
        if args.verify:
            note += f", {len(failed)} prediction failure(s)"
            detail = ", ".join(
                f"{count} {source}" for source, count in sorted(sources.items())
            )
            if detail:
                note += f" ({detail})"
        print(note)
        for label, mismatches in failed:
            for mismatch in mismatches:
                print(f"  FAIL {label}: {mismatch}", file=sys.stderr)
    if failed:
        return 1
    if args.strict and errors:
        return 1
    return 0


#: Families `lab bisect` maps when none are named: small, strongly
#: connected, and spanning one-leader / max-leader / two-leader shapes.
_DEFAULT_BISECT_FAMILIES = ("cycle", "clique", "wheel")


def _cmd_bisect(args: argparse.Namespace) -> int:
    from repro.lab.bisect import bisect_all_deal_boundary

    families = tuple(args.family) if args.family else _DEFAULT_BISECT_FAMILIES
    grid = _parse_grid(args.grid)
    swept = [k for k, v in grid.items() if isinstance(v, list)]
    if swept:
        raise LabError(
            f"lab bisect probes one topology per family; --grid "
            f"{', '.join(swept)} must be single values (the swept knob "
            f"is --knob {args.knob})"
        )
    results = [
        bisect_all_deal_boundary(
            family,
            knob=args.knob,
            engine=args.engine,
            timing_kind=args.timing_kind,
            params=grid or None,
            seeds=tuple(range(args.seeds)),
            lo=args.lo,
            hi=args.hi,
            iters=args.iters,
        )
        for family in families
    ]
    if args.json:
        print(json.dumps(
            {"knob": args.knob, "results": [r.to_dict() for r in results]},
            indent=2, sort_keys=True,
        ))
        return 0
    rows = []
    for r in results:
        if not r.holds_at_lo:
            verdict = f"already broken at {r.holds_until:g}"
        elif not r.fails_at_hi:
            verdict = f"still holds at {r.breaks_from:g}"
        else:
            verdict = f"~{r.boundary:.3f}"
        rows.append([
            r.family, r.engine, r.timing_kind,
            f"{r.holds_until:.3f}", f"{r.breaks_from:.3f}",
            verdict, r.evaluations,
        ])
    print(_format_rows(
        ["family", "engine", "timing", "holds ≤", "breaks ≥",
         f"{args.knob} boundary", "runs"],
        rows,
    ))
    return 0


def _cmd_ls(args: argparse.Namespace) -> int:
    if args.limit < 0:
        raise LabError(f"--limit must be >= 0, got {args.limit}")
    with _open_existing(args.store) as store:
        # Filter and slice on the cheap index first; only the rows that
        # survive get their report blob parsed for the verdict column.
        selected = [
            key
            for key, engine, _name, _ok in store.index()
            if args.engine is None or engine == args.engine
        ]
        if args.limit:
            selected = selected[-args.limit:]
        rows = [_entry_row(key, store.get(key)) for key in selected]
        total = len(store)
    if not rows:
        if total:
            print(f"no runs match the filters ({total} in store)")
        else:
            print(f"store {args.store}: empty")
        return 0
    print(_format_rows(["key", "engine", "scenario", "verdict", "t"], rows))
    print(f"{len(rows)} run(s) shown")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    with _open_existing(args.store) as store:
        key = _resolve_key(store, args.key)
        entry = store.get(key)
    if args.json:
        print(json.dumps({"key": key, "entry": entry}, indent=2, sort_keys=True))
        return 0
    print(f"key: {key}")
    if not entry.get("ok"):
        print(
            f"FAILED {entry.get('engine')}: "
            f"{entry.get('error_type')}: {entry.get('message')}"
        )
        return 0
    report = RunReport.from_dict(entry["report"])
    print(report.summary())
    print(
        f"all-Deal: {report.all_deal()}  Thm4.9-safe: "
        f"{report.conforming_acceptable()}  events: {report.events_fired}  "
        f"stored bytes: {report.stored_bytes}"
    )
    milestones = entry.get("milestones")
    if milestones:
        print("milestones: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(milestones.items())
        ))
    return 0


_DIFF_FIELDS = (
    "engine",
    "completion_time",
    "phase_two_bound",
    "events_fired",
    "stored_bytes",
    "contract_storage_bytes",
    "published_bytes",
    "unlock_calls",
)


def _cmd_diff(args: argparse.Namespace) -> int:
    with _open_existing(args.store) as store:
        entries = [
            (key, store.get(key))
            for key in (_resolve_key(store, args.a), _resolve_key(store, args.b))
        ]
    rows: list[list[object]] = []
    sides: list[dict[str, object]] = []
    for key, entry in entries:
        if entry.get("ok"):
            report = RunReport.from_dict(entry["report"])
            side: dict[str, object] = {
                field: getattr(report, field) for field in _DIFF_FIELDS
            }
            side["scenario"] = report.scenario.label()
            side["all_deal"] = report.all_deal()
            side["thm49_safe"] = report.conforming_acceptable()
            side["outcomes"] = {
                v: o.value for v, o in sorted(report.outcomes.items())
            }
        else:
            side = {
                "engine": entry.get("engine"),
                "scenario": entry.get("scenario", {}).get("name", "-"),
                "error": f"{entry.get('error_type')}: {entry.get('message')}",
            }
        sides.append(side)
    left, right = sides
    differing = 0
    for field in sorted(set(left) | set(right)):
        a, b = left.get(field, "-"), right.get(field, "-")
        if a != b:
            differing += 1
        rows.append([field, a, b, "" if a == b else "<-- differs"])
    print(_format_rows(
        ["field", entries[0][0][:12], entries[1][0][:12], ""], rows
    ))
    print(f"{differing} field(s) differ")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    by = tuple(dim for dim in args.by.split(",") if dim)
    if not by:
        raise LabError(
            "--by needs at least one of engine, family, mix, params, "
            "timing, verdict, path"
        )
    if args.compare and args.engine:
        # Filtering would silently zero one side of the head-to-head.
        raise LabError(
            "--engine cannot be combined with --compare "
            "(compare already names its two engines)"
        )
    with _open_existing(args.store) as store:
        total = len(store)
        facts = collect_facts(store, engines=args.engine or None)
    if args.compare:
        engine_a, engine_b = args.compare
        check_dimensions(by)
        pivot = next((dim for dim in by if dim != "engine"), "family")
        rows = compare(facts, engine_a, engine_b, by=pivot)
        if args.json:
            print(json.dumps(
                {"compare": [engine_a, engine_b], "by": pivot, "rows": rows},
                indent=2, sort_keys=True,
            ))
            return 0
        headers, table = compare_table(rows, engine_a, engine_b, pivot)
        print(_format_rows(headers, table))
        print(f"{len(rows)} group(s) over {len(facts)} run(s)")
        return 0
    if args.json:
        print(json.dumps(stats_payload(facts, by), indent=2, sort_keys=True))
        return 0
    stats = aggregate(facts, by)  # validates --by even when empty
    if not facts:
        # Distinguish a store with no runs from a filter matching none.
        if total:
            print(f"no runs match the filters ({total} in store)")
        else:
            print(f"store {args.store}: empty")
        return 0
    headers, rows = stats_table(stats, by)
    print(_format_rows(headers, rows))
    print(f"{len(stats)} group(s) over {len(facts)} run(s)")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    # Every shard is opened — and so validated — before any merging
    # starts, so a typo'd, missing, or corrupt shard never causes a
    # partial merge.
    missing = [src for src in args.sources if not Path(src).exists()]
    if missing:
        raise LabError(f"no such shard store: {', '.join(missing)}")
    shards: list[tuple[str, RunStore]] = []
    try:
        for src in args.sources:
            shard = open_store(src)
            shards.append((src, shard))
            # A corrupt SQLite shard raises on open; a corrupt JSONL
            # shard "opens" because undecodable lines are skipped by
            # design (torn-tail tolerance).  Distinguish garbage from a
            # legitimate crash artifact: a shard killed during its very
            # first write holds one torn line with no newline, while
            # *complete* lines that all failed to decode are not a run
            # store at all.
            if isinstance(shard, JsonlStore) and not len(shard):
                complete = Path(src).read_bytes().split(b"\n")[:-1]
                if any(line.strip() for line in complete):
                    raise LabError(
                        f"shard {src} holds no decodable runs despite "
                        "being non-empty (corrupt, or not a run store?)"
                    )
        written_total = 0
        with open_store(args.dest) as dest:
            before = len(dest)
            for src, shard in shards:
                written = dest.merge_from(shard)
                written_total += written
                print(f"merged {src}: {written} record(s) written")
            print(
                f"{args.dest}: {before} -> {len(dest)} run(s) "
                f"({written_total} written)"
            )
    finally:
        for _, shard in shards:
            shard.close()
    return 0


def _cmd_families(args: argparse.Namespace) -> int:
    rows = []
    for name in list_families():
        family = get_family(name)
        sc = "yes" if family.strongly_connected else "NO (impossibility)"
        rows.append([name, dict(family.defaults), sc, family.description])
    print(_format_rows(["family", "params", "strongly connected", "description"], rows))
    return 0


def _cmd_mixes(args: argparse.Namespace) -> int:
    rows = [[name, get_mix(name).description] for name in list_mixes()]
    print(_format_rows(["mix", "description"], rows))
    return 0


def _cmd_timings(args: argparse.Namespace) -> int:
    rows = []
    for name in list_timings():
        profile = get_timing(name)
        spec = "-" if profile.spec is None else json.dumps(
            profile.spec, sort_keys=True
        )
        rows.append([name, spec, profile.description])
    print(_format_rows(["timing", "spec", "description"], rows))
    return 0


def _cmd_presets(args: argparse.Namespace) -> int:
    rows = []
    for name in list_presets():
        workloads = get_preset(name)
        families = ", ".join(dict.fromkeys(w.family for w in workloads))
        runs = len(build_sweep(list(workloads), name=name))
        rows.append([name, len(workloads), families, runs])
    print(_format_rows(["preset", "workloads", "families", "runs"], rows))
    return 0


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"run-store path (*.sqlite, *.jsonl, :memory:); default {DEFAULT_STORE}",
    )


def _add_lease_args(parser: argparse.ArgumentParser) -> None:
    """The lease-protocol knobs, identical on driver and worker (the
    driver forwards them verbatim to every worker it spawns)."""
    parser.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds a claimed chunk stays leased without a heartbeat "
             "(workers heartbeat per item, so this bounds one scenario, "
             "not a chunk; default 30)",
    )
    parser.add_argument(
        "--skew-grace", type=float, default=5.0,
        help="extra seconds past expiry before a lease is treated as "
             "dead (clock-disagreement allowance; default 5)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=4,
        help="runs per claimable chunk (default 4)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lab",
        description="workload generation + content-addressed run store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand and execute a workload")
    target = run.add_mutually_exclusive_group()
    target.add_argument("--preset", help="a registered preset (see `lab presets`)")
    target.add_argument("--family", help="a topology family (see `lab families`)")
    run.add_argument(
        "--grid", nargs="*", default=[], metavar="K=V[,V...]",
        help="family params; comma-separated values are swept",
    )
    run.add_argument("--mix", action="append", help="adversary mix (repeatable)")
    run.add_argument("--engine", action="append", help="engine (repeatable)")
    run.add_argument(
        "--timing", action="append",
        help="timing profile (repeatable; see `lab timings`) — replaces "
             "every workload's timing axis",
    )
    run.add_argument(
        "--seed", type=int, default=None,
        help="replace every workload's seed (re-rolls topologies and mixes)",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="print per-chunk completion (with milestone counts) as "
             "results land",
    )
    run.add_argument(
        "--fast-path", action="store_true",
        help="answer fully-covered scenarios from the closed-form "
             "analytic engine (byte-identical reports, no simulation); "
             "the residue still runs through the workers",
    )
    run.add_argument("--serial", action="store_true", help="skip the process pool")
    run.add_argument("--workers", type=int, default=None)
    run.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="drain with N local worker processes coordinated by the "
             "claim/lease protocol in the SQLite store (requires a "
             "*.sqlite --store)",
    )
    _add_lease_args(run)
    run.add_argument(
        "--no-store", action="store_true",
        help="execute without reading or writing the store",
    )
    _add_store_arg(run)
    run.set_defaults(func=_cmd_run)

    check = sub.add_parser(
        "check",
        help="statically verify workloads (diagnostics + closed-form "
             "predictions) without executing them",
    )
    check_target = check.add_mutually_exclusive_group()
    check_target.add_argument(
        "--preset", help="a registered preset (see `lab presets`)"
    )
    check_target.add_argument(
        "--family", help="a topology family (default: every family)"
    )
    check.add_argument(
        "--grid", nargs="*", default=[], metavar="K=V[,V...]",
        help="family params; comma-separated values are swept",
    )
    check.add_argument("--mix", action="append", help="adversary mix (repeatable)")
    check.add_argument("--engine", action="append", help="engine (repeatable)")
    check.add_argument(
        "--timing", action="append",
        help="timing profile (repeatable) — replaces every workload's "
             "timing axis",
    )
    check.add_argument(
        "--seed", type=int, default=None,
        help="replace every workload's seed",
    )
    check.add_argument(
        "--verify", action="store_true",
        help="also execute each scenario and cross-check the analysis: "
             "full-coverage predictions must byte-match the report, "
             "invalid scenarios must be refused by the engine "
             "(exit 1 on any mismatch)",
    )
    check.add_argument(
        "--fast-path", action="store_true",
        help="with --verify: satisfy full-coverage scenarios from the "
             "closed-form synthesizer instead of the simulator",
    )
    check.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any scenario has error-severity diagnostics",
    )
    check.add_argument("--json", action="store_true", help="machine-readable")
    _add_store_arg(check)
    check.set_defaults(func=_cmd_check)

    bisect = sub.add_parser(
        "bisect",
        help="binary-search a timing knob to the all-Deal boundary "
             "per topology family",
    )
    bisect.add_argument(
        "--knob", default="violation",
        help="the timing parameter to bisect (currently: violation)",
    )
    bisect.add_argument(
        "--family", action="append",
        help="topology family (repeatable; default: "
             + ", ".join(_DEFAULT_BISECT_FAMILIES) + ")",
    )
    bisect.add_argument(
        "--grid", nargs="*", default=[], metavar="K=V",
        help="family params (single values only — the knob is the sweep)",
    )
    bisect.add_argument("--engine", default="herlihy")
    bisect.add_argument(
        "--timing-kind", default="stragglers",
        help="timing model the knob belongs to "
             "(stragglers | adaptive-stragglers)",
    )
    bisect.add_argument(
        "--seeds", type=int, default=3,
        help="panel size: seeds 0..N-1 must all reach all-Deal to 'hold'",
    )
    bisect.add_argument("--lo", type=float, default=1.05)
    bisect.add_argument("--hi", type=float, default=6.0)
    bisect.add_argument(
        "--iters", type=int, default=8, help="bisection halvings"
    )
    bisect.add_argument("--json", action="store_true", help="machine-readable")
    bisect.set_defaults(func=_cmd_bisect)

    ls = sub.add_parser("ls", help="list stored runs")
    ls.add_argument("--engine", help="only runs of this engine")
    ls.add_argument("--limit", type=int, default=0, help="show only the last N")
    _add_store_arg(ls)
    ls.set_defaults(func=_cmd_ls)

    show = sub.add_parser("show", help="print one stored run")
    show.add_argument("key", help="key prefix (hex)")
    show.add_argument("--json", action="store_true", help="raw stored entry")
    _add_store_arg(show)
    show.set_defaults(func=_cmd_show)

    diff = sub.add_parser("diff", help="compare two stored runs")
    diff.add_argument("a", help="first key prefix")
    diff.add_argument("b", help="second key prefix")
    _add_store_arg(diff)
    diff.set_defaults(func=_cmd_diff)

    stats = sub.add_parser("stats", help="cross-sweep aggregates")
    stats.add_argument(
        "--by", default="engine", metavar="DIM[,DIM...]",
        help="group-by dimensions: engine, family, mix, params, timing, "
             "verdict, path (comma-separated; default engine)",
    )
    stats.add_argument(
        "--engine", action="append",
        help="only runs of this engine (repeatable)",
    )
    stats.add_argument(
        "--compare", nargs=2, metavar=("A", "B"),
        help="pivot engines A and B head-to-head over the first "
             "non-engine --by dimension (family when --by has none); "
             "the safety delta column is B minus A",
    )
    stats.add_argument("--json", action="store_true", help="machine-readable")
    _add_store_arg(stats)
    stats.set_defaults(func=_cmd_stats)

    work = sub.add_parser(
        "work",
        help="run one fleet worker loop (claim → execute → commit) "
             "against a shared SQLite store",
    )
    work.add_argument(
        "--worker-id", default=None,
        help="this worker's identity in the lease table "
             "(default: {hostname}-{pid})",
    )
    work.add_argument(
        "--fast-path", action="store_true",
        help="answer fully-covered scenarios from the closed-form "
             "analytic engine (same semantics as `lab run --fast-path`)",
    )
    work.add_argument(
        "--max-chunks", type=int, default=None,
        help="exit after committing N chunks even if work remains",
    )
    work.add_argument("--json", action="store_true", help="machine-readable stats")
    _add_lease_args(work)
    _add_store_arg(work)
    work.set_defaults(func=_cmd_work)

    fleet = sub.add_parser("fleet", help="inspect fleet coordination state")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status",
        help="the queue snapshot: chunk claim/lease table, worker "
             "heartbeat ages",
    )
    fleet_status.add_argument(
        "--json", action="store_true", help="machine-readable snapshot"
    )
    _add_store_arg(fleet_status)
    fleet_status.set_defaults(func=_cmd_fleet_status)

    merge = sub.add_parser(
        "merge", help="absorb shard stores into DEST (newest record wins)"
    )
    merge.add_argument("dest", help="destination store path")
    merge.add_argument("sources", nargs="+", help="shard store path(s)")
    merge.set_defaults(func=_cmd_merge)

    sub.add_parser("families", help="list topology families").set_defaults(
        func=_cmd_families
    )
    sub.add_parser("mixes", help="list adversary mixes").set_defaults(
        func=_cmd_mixes
    )
    sub.add_parser("timings", help="list timing profiles").set_defaults(
        func=_cmd_timings
    )
    sub.add_parser("presets", help="list workload presets").set_defaults(
        func=_cmd_presets
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
