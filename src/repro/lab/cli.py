"""The ``python -m repro lab`` command line.

Subcommands::

    lab run       expand a workload (preset or --family) and execute it
                  through the content-addressed store; warm re-runs
                  execute zero engines
    lab ls        list stored runs (key, engine, scenario, verdict)
    lab show      print one stored run by key prefix (--json for raw)
    lab diff      field-by-field comparison of two stored runs
    lab families  the registered topology families and their params
    lab mixes     the registered adversary mixes
    lab presets   the bundled workload presets

Examples::

    python -m repro lab run --preset smoke
    python -m repro lab run --family erdos-renyi --grid n=6,8 p=0.2 \\
        --mix all-conforming --mix phase-crash --engine herlihy
    python -m repro lab ls
    python -m repro lab show 3f2a
    python -m repro lab diff 3f2a 9c41

The store defaults to ``.lab/runs.sqlite`` under the current directory;
``--store`` accepts any ``*.sqlite``/``*.jsonl`` path or ``:memory:``.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Sequence

from repro.api.report import RunReport
from repro.api.sweep import run_sweep
from repro.errors import LabError, ReproError
from repro.lab.registry import (
    get_family,
    get_mix,
    get_preset,
    list_families,
    list_mixes,
    list_presets,
)
from repro.lab.store import RunStore, _entry_identity, open_store
from repro.lab.workloads import Workload, build_sweep

DEFAULT_STORE = ".lab/runs.sqlite"


def _parse_grid(pairs: Sequence[str]) -> dict[str, Any]:
    """``["n=3,5", "p=0.2"]`` → ``{"n": [3, 5], "p": 0.2}``."""
    grid: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise LabError(f"--grid expects key=value, got {pair!r}")
        values = [_parse_atom(v) for v in raw.split(",") if v != ""]
        if not values:
            raise LabError(f"--grid {key} has no values")
        grid[key] = values if len(values) > 1 else values[0]
    return grid


def _parse_atom(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _format_rows(headers: list[str], rows: list[list[object]]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join(lines)


def _resolve_key(store: RunStore, prefix: str) -> str:
    matches = store.find(prefix)
    if not matches:
        raise LabError(f"no stored run matches key prefix {prefix!r}")
    if len(matches) > 1:
        shown = ", ".join(k[:12] for k in matches[:8])
        raise LabError(
            f"key prefix {prefix!r} is ambiguous ({len(matches)} matches: "
            f"{shown}{', ...' if len(matches) > 8 else ''})"
        )
    return matches[0]


def _entry_row(key: str, entry: dict) -> list[object]:
    engine, name = _entry_identity(entry)
    if entry.get("ok"):
        report = RunReport.from_dict(entry["report"])
        verdict = "all-Deal" if report.all_deal() else (
            "safe" if report.conforming_acceptable() else "UNSAFE"
        )
        completion = report.completion_time
    else:
        verdict = f"error:{entry.get('error_type')}"
        completion = "-"
    return [key[:12], engine, name or "-", verdict, completion]


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    if args.preset:
        workloads = list(get_preset(args.preset))
        title = f"preset:{args.preset}"
    elif args.family:
        workloads = [
            Workload(
                args.family,
                _parse_grid(args.grid),
                mixes=tuple(args.mix) if args.mix else ("all-conforming",),
                engines=tuple(args.engine) if args.engine else ("herlihy",),
            )
        ]
        title = f"family:{args.family}"
    else:
        raise LabError("lab run needs --preset or --family")
    # --seed replaces every workload's seed; unset keeps their defaults.
    sweep = build_sweep(workloads, name=title, base_seed=args.seed)
    if args.no_store:
        report = run_sweep(
            sweep, parallel=not args.serial, max_workers=args.workers
        )
        print(report.summary())
        print(f"store: disabled (--no-store) — executed {report.executed}")
        return 0
    with open_store(args.store) as store:
        report = run_sweep(
            sweep,
            parallel=not args.serial,
            max_workers=args.workers,
            store=store,
        )
        total = len(store)
    print(report.summary())
    print(
        f"store: {args.store} — executed {report.executed}, "
        f"cached {report.cached}, {total} run(s) stored"
    )
    return 0


def _cmd_ls(args: argparse.Namespace) -> int:
    with open_store(args.store) as store:
        # Filter and slice on the cheap index first; only the rows that
        # survive get their report blob parsed for the verdict column.
        selected = [
            key
            for key, engine, _name, _ok in store.index()
            if args.engine is None or engine == args.engine
        ]
        if args.limit:
            selected = selected[-args.limit:]
        rows = [_entry_row(key, store.get(key)) for key in selected]
    if not rows:
        print(f"store {args.store}: empty")
        return 0
    print(_format_rows(["key", "engine", "scenario", "verdict", "t"], rows))
    print(f"{len(rows)} run(s) shown")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    with open_store(args.store) as store:
        key = _resolve_key(store, args.key)
        entry = store.get(key)
    if args.json:
        print(json.dumps({"key": key, "entry": entry}, indent=2, sort_keys=True))
        return 0
    print(f"key: {key}")
    if not entry.get("ok"):
        print(
            f"FAILED {entry.get('engine')}: "
            f"{entry.get('error_type')}: {entry.get('message')}"
        )
        return 0
    report = RunReport.from_dict(entry["report"])
    print(report.summary())
    print(
        f"all-Deal: {report.all_deal()}  Thm4.9-safe: "
        f"{report.conforming_acceptable()}  events: {report.events_fired}  "
        f"stored bytes: {report.stored_bytes}"
    )
    return 0


_DIFF_FIELDS = (
    "engine",
    "completion_time",
    "phase_two_bound",
    "events_fired",
    "stored_bytes",
    "contract_storage_bytes",
    "published_bytes",
    "unlock_calls",
)


def _cmd_diff(args: argparse.Namespace) -> int:
    with open_store(args.store) as store:
        entries = [
            (key, store.get(key))
            for key in (_resolve_key(store, args.a), _resolve_key(store, args.b))
        ]
    rows: list[list[object]] = []
    sides: list[dict[str, object]] = []
    for key, entry in entries:
        if entry.get("ok"):
            report = RunReport.from_dict(entry["report"])
            side: dict[str, object] = {
                field: getattr(report, field) for field in _DIFF_FIELDS
            }
            side["scenario"] = report.scenario.label()
            side["all_deal"] = report.all_deal()
            side["thm49_safe"] = report.conforming_acceptable()
            side["outcomes"] = {
                v: o.value for v, o in sorted(report.outcomes.items())
            }
        else:
            side = {
                "engine": entry.get("engine"),
                "scenario": entry.get("scenario", {}).get("name", "-"),
                "error": f"{entry.get('error_type')}: {entry.get('message')}",
            }
        sides.append(side)
    left, right = sides
    differing = 0
    for field in sorted(set(left) | set(right)):
        a, b = left.get(field, "-"), right.get(field, "-")
        if a != b:
            differing += 1
        rows.append([field, a, b, "" if a == b else "<-- differs"])
    print(_format_rows(
        ["field", entries[0][0][:12], entries[1][0][:12], ""], rows
    ))
    print(f"{differing} field(s) differ")
    return 0


def _cmd_families(args: argparse.Namespace) -> int:
    rows = []
    for name in list_families():
        family = get_family(name)
        sc = "yes" if family.strongly_connected else "NO (impossibility)"
        rows.append([name, dict(family.defaults), sc, family.description])
    print(_format_rows(["family", "params", "strongly connected", "description"], rows))
    return 0


def _cmd_mixes(args: argparse.Namespace) -> int:
    rows = [[name, get_mix(name).description] for name in list_mixes()]
    print(_format_rows(["mix", "description"], rows))
    return 0


def _cmd_presets(args: argparse.Namespace) -> int:
    rows = []
    for name in list_presets():
        workloads = get_preset(name)
        families = ", ".join(dict.fromkeys(w.family for w in workloads))
        runs = len(build_sweep(list(workloads), name=name))
        rows.append([name, len(workloads), families, runs])
    print(_format_rows(["preset", "workloads", "families", "runs"], rows))
    return 0


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"run-store path (*.sqlite, *.jsonl, :memory:); default {DEFAULT_STORE}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lab",
        description="workload generation + content-addressed run store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand and execute a workload")
    target = run.add_mutually_exclusive_group()
    target.add_argument("--preset", help="a registered preset (see `lab presets`)")
    target.add_argument("--family", help="a topology family (see `lab families`)")
    run.add_argument(
        "--grid", nargs="*", default=[], metavar="K=V[,V...]",
        help="family params; comma-separated values are swept",
    )
    run.add_argument("--mix", action="append", help="adversary mix (repeatable)")
    run.add_argument("--engine", action="append", help="engine (repeatable)")
    run.add_argument(
        "--seed", type=int, default=None,
        help="replace every workload's seed (re-rolls topologies and mixes)",
    )
    run.add_argument("--serial", action="store_true", help="skip the process pool")
    run.add_argument("--workers", type=int, default=None)
    run.add_argument(
        "--no-store", action="store_true",
        help="execute without reading or writing the store",
    )
    _add_store_arg(run)
    run.set_defaults(func=_cmd_run)

    ls = sub.add_parser("ls", help="list stored runs")
    ls.add_argument("--engine", help="only runs of this engine")
    ls.add_argument("--limit", type=int, default=0, help="show only the last N")
    _add_store_arg(ls)
    ls.set_defaults(func=_cmd_ls)

    show = sub.add_parser("show", help="print one stored run")
    show.add_argument("key", help="key prefix (hex)")
    show.add_argument("--json", action="store_true", help="raw stored entry")
    _add_store_arg(show)
    show.set_defaults(func=_cmd_show)

    diff = sub.add_parser("diff", help="compare two stored runs")
    diff.add_argument("a", help="first key prefix")
    diff.add_argument("b", help="second key prefix")
    _add_store_arg(diff)
    diff.set_defaults(func=_cmd_diff)

    sub.add_parser("families", help="list topology families").set_defaults(
        func=_cmd_families
    )
    sub.add_parser("mixes", help="list adversary mixes").set_defaults(
        func=_cmd_mixes
    )
    sub.add_parser("presets", help="list workload presets").set_defaults(
        func=_cmd_presets
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
