"""Boundary bisection: where exactly does all-Deal stop holding?

Theorem 4.2 guarantees all-``DEAL`` while every party's round trip fits
within Δ; the ``stragglers``/``adaptive-stragglers`` timing models break
that premise by a tunable factor (``violation``).  Somewhere between
"just over 1" (absorbed by the protocol's deadline slack) and "several
Δ" (hopeless) lies the boundary where the guarantee actually dies — a
different place for every topology family, which is the interesting
part.  :func:`bisect_all_deal_boundary` binary-searches the knob to
that boundary.

Built on the execution-session layer's cheap re-runs: every probe is an
in-process ``Engine.open(scenario).run_to_completion()`` (no store, no
process pool) over a small seeded panel, so one bisection costs
``iters × seeds`` runs of a single small topology.

The predicate "all seeds reach all-Deal" is treated as monotone in the
knob.  The simulations are discrete, so it is not *perfectly* monotone
— the returned bracket is the boundary of the bisection's trajectory,
bounded by the observed ``holds_at_lo``/``fails_at_hi`` endpoints which
the result reports explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.api.engine import get_engine
from repro.api.scenario import Scenario
from repro.api.sweep import derive_seed
from repro.errors import LabError
from repro.sim.timing import resolve_timing

#: The knobs bisection currently understands, with their hard floors
#: (violation <= 1 is not a violation at all).
BISECTABLE_KNOBS: dict[str, float] = {"violation": 1.0}


@dataclass(frozen=True)
class BisectResult:
    """One family's bisected all-Deal boundary."""

    family: str
    engine: str
    timing_kind: str
    knob: str
    holds_until: float
    """Lower end of the final search bracket.  With a genuine bracket
    (``holds_at_lo and fails_at_hi``) this is the highest probed value
    at which every seed reached all-Deal; otherwise it degenerates to
    the deciding endpoint and no probed value is known to hold."""
    breaks_from: float
    """Upper end of the final search bracket — the lowest probed value
    at which some seed missed all-Deal, when a genuine bracket exists;
    otherwise the deciding endpoint."""
    holds_at_lo: bool
    """Whether the ``lo`` endpoint held.  ``False`` means the guarantee
    was already broken at the bottom of the probed range (``hi`` was
    not evaluated — the boundary, if any, lies below ``lo``)."""
    fails_at_hi: bool
    """Whether ``hi`` was observed to fail.  ``False`` either means
    every probed value held (the boundary, if any, lies above ``hi``)
    or — when ``holds_at_lo`` is also ``False`` — that ``hi`` was never
    evaluated because ``lo`` already decided the question."""
    seeds: tuple[int, ...]
    evaluations: int
    """Engine runs spent (≤ ``(iters + 2) × len(seeds)``)."""

    @property
    def bracketed(self) -> bool:
        """Whether the boundary was actually pinned inside [lo, hi]."""
        return self.holds_at_lo and self.fails_at_hi

    @property
    def boundary(self) -> float | None:
        """The midpoint estimate of the all-Deal boundary, or ``None``
        when the probed range never bracketed it (see :attr:`bracketed`)."""
        if not self.bracketed:
            return None
        return (self.holds_until + self.breaks_from) / 2

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "engine": self.engine,
            "timing_kind": self.timing_kind,
            "knob": self.knob,
            "holds_until": self.holds_until,
            "breaks_from": self.breaks_from,
            "boundary": self.boundary,
            "holds_at_lo": self.holds_at_lo,
            "fails_at_hi": self.fails_at_hi,
            "seeds": list(self.seeds),
            "evaluations": self.evaluations,
        }


def bisect_all_deal_boundary(
    family: str,
    knob: str = "violation",
    engine: str = "herlihy",
    timing_kind: str = "stragglers",
    params: Mapping[str, Any] | None = None,
    seeds: Sequence[int] = (0, 1, 2),
    lo: float = 1.05,
    hi: float = 6.0,
    iters: int = 8,
    scenario_kwargs: Mapping[str, Any] | None = None,
) -> BisectResult:
    """Binary-search ``knob`` to the all-Deal boundary of one family.

    For each probed value, one seeded panel runs: topology drawn from
    the family (per seed), scenario seeded likewise, timing set to
    ``{"kind": timing_kind, knob: value}``.  The value *holds* when
    every panel run ends all-Deal.  Returns the final bracket after
    ``iters`` halvings (or a degenerate bracket when an endpoint
    already decides the question).
    """
    from repro.lab.registry import get_family

    if knob not in BISECTABLE_KNOBS:
        known = ", ".join(sorted(BISECTABLE_KNOBS))
        raise LabError(f"knob {knob!r} is not bisectable; supported: {known}")
    floor = BISECTABLE_KNOBS[knob]
    if not floor < lo < hi:
        raise LabError(
            f"bisect needs {floor} < lo < hi, got lo={lo} hi={hi}"
        )
    if iters < 1:
        raise LabError(f"bisect needs iters >= 1, got {iters}")
    if not seeds:
        raise LabError("bisect needs at least one seed")
    topology_family = get_family(family)
    if not topology_family.strongly_connected:
        raise LabError(
            f"family {family!r} is not strongly connected; no protocol "
            "engine runs it, so it has no all-Deal boundary to bisect"
        )
    # Fail fast on a knob the timing kind cannot express.
    resolve_timing({"kind": timing_kind, knob: (lo + hi) / 2})
    get_engine(engine)

    evaluations = 0

    def holds(value: float) -> bool:
        nonlocal evaluations
        for seed in seeds:
            topology = topology_family.generate(
                params, seed=derive_seed(seed, f"bisect:{family}", 0)
            )
            scenario = Scenario(
                topology=topology,
                name=f"bisect:{family}:{knob}={value:.5f}#{seed}",
                seed=seed,
                timing={"kind": timing_kind, knob: value},
                **dict(scenario_kwargs or {}),
            )
            evaluations += 1
            if not get_engine(engine).open(scenario).run_to_completion().all_deal():
                return False
        return True

    def result(holds_until: float, breaks_from: float,
               holds_at_lo: bool, fails_at_hi: bool) -> BisectResult:
        return BisectResult(
            family=family,
            engine=engine,
            timing_kind=timing_kind,
            knob=knob,
            holds_until=holds_until,
            breaks_from=breaks_from,
            holds_at_lo=holds_at_lo,
            fails_at_hi=fails_at_hi,
            seeds=tuple(seeds),
            evaluations=evaluations,
        )

    if not holds(lo):
        # lo already decides the question; hi is never evaluated, so
        # make no claim about it.
        return result(lo, lo, holds_at_lo=False, fails_at_hi=False)
    if holds(hi):
        return result(hi, hi, holds_at_lo=True, fails_at_hi=False)
    low, high = lo, hi
    for _ in range(iters):
        mid = (low + high) / 2
        if holds(mid):
            low = mid
        else:
            high = mid
    return result(low, high, holds_at_lo=True, fails_at_hi=True)
