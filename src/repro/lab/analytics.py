"""Cross-sweep analytics over content-addressed run stores.

The paper's claims are *rate* statements over adversarial executions —
every party ends Deal when all conform (Theorem 4.2), no conforming
party ends Underwater under any coalition (Theorem 4.9) — so once
:mod:`repro.lab.store` holds thousands of runs the interesting question
is no longer "what happened in run ``3f2a``" but "what fraction of
``phase-crash`` runs on ``erdos-renyi`` topologies stayed safe, per
engine".  This module answers that:

* :func:`collect_facts` flattens stored entries into :class:`RunFacts`
  rows *without* reconstructing scenarios or topologies — group-by keys
  come from the structured ``lab:`` scenario-name convention
  (``lab:<family>:<params>:<mix>:<engine>#<i>``, see
  :func:`repro.lab.workloads.build_sweep`) via :func:`parse_lab_name`,
  except ``timing``, which reads the scenario's canonical ``timing``
  field (:func:`timing_of`) so pre-timing entries group as ``uniform``;
* :func:`dimensions` enumerates the distinct values each group-by
  dimension takes across a store;
* :func:`aggregate` groups facts by any subset of
  ``engine``/``family``/``mix``/``params``/``timing`` and emits
  :class:`GroupStats` — run counts, all-Deal rate, Theorem-4.9 safety
  rate, mean/percentile completion time, mean stored bytes, total wall
  time, and a failure taxonomy keyed by ``error_type``;
* :func:`compare` pivots two engines into a head-to-head table
  (e.g. ``herlihy`` vs ``naive-timelock`` per family).

The plain-text table emitters (:func:`format_rows`,
:func:`format_table`) live here so ``python -m repro lab``, the
benchmarks, and ad-hoc scripts all render the same shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.outcomes import ACCEPTABLE_OUTCOMES, Outcome
from repro.errors import LabError, ReproError
from repro.lab.store import RunStore
from repro.sim import milestones

#: The group-by dimensions every stored run exposes.
DIMENSIONS = ("engine", "family", "mix", "params", "timing")

#: ``DIMENSIONS`` plus the derived group-bys ``aggregate`` accepts.
#: ``verdict`` is the static analyzer's predicted all-Deal verdict
#: (:mod:`repro.analysis.protocol`), recomputed from the stored scenario
#: — grouping observed ``all-Deal`` rates by it makes
#: prediction-vs-observed divergence visible straight from the CLI.
#: ``path`` is the execution-path provenance stamp fast-path sweeps
#: record in ``report.extra["path"]`` (:mod:`repro.analysis.engine`) —
#: ``analytic`` for closed-form reports, ``simulated`` for engine runs
#: (also the default for entries recorded before the stamp existed, all
#: of which did run the simulator).
GROUPABLE_DIMENSIONS = (*DIMENSIONS, "verdict", "path")

_ACCEPTABLE_VALUES = frozenset(o.value for o in ACCEPTABLE_OUTCOMES)
_DEAL = Outcome.DEAL.value


# ---------------------------------------------------------------------------
# table emission (shared by the lab CLI and the benchmarks)
# ---------------------------------------------------------------------------


def format_rows(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (headers, separator, rows)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join(lines)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """An aligned ASCII table under an underlined title."""
    return "\n".join([title, "=" * len(title), format_rows(headers, rows)])


# ---------------------------------------------------------------------------
# fact extraction
# ---------------------------------------------------------------------------


def parse_lab_name(name: str) -> dict[str, str]:
    """Group-by keys from one structured scenario name.

    ``lab:<family>:<params>:<mix>:<engine>#<index>`` (the
    :func:`repro.lab.workloads.build_sweep` convention) parses into
    ``{"family", "params", "mix"}``; any other name — ad-hoc sweeps,
    hand-built scenarios — yields ``"-"`` placeholders so it still
    aggregates under engine.

    The family segment is the workload *label* — the custom
    ``Workload.name`` when one was given, the topology family otherwise
    — so two differently-named workloads of one family group
    separately, which is what a named workload asks for.  Parsing is
    anchored at the *right* (params, mix, and engine labels never
    contain ``:``), so a label containing colons stays in the family
    segment instead of shifting every field.
    """
    parts = name.split(":")
    if len(parts) >= 5 and parts[0] == "lab":
        return {
            "family": ":".join(parts[1:-3]),
            "params": parts[-3],
            "mix": parts[-2],
        }
    return {"family": "-", "params": "-", "mix": "-"}


@dataclass(frozen=True)
class RunFacts:
    """One stored run flattened to its aggregatable facts.

    Built straight from the stored entry dict — no
    :class:`~repro.api.report.RunReport` or topology reconstruction —
    so fact collection stays linear in store size with a small constant.
    Verdict fields are ``None`` for failure records.
    """

    key: str
    engine: str
    scenario_name: str
    family: str
    params: str
    mix: str
    timing: str
    ok: bool
    error_type: str | None
    all_deal: bool | None
    thm49_safe: bool | None
    completion_time: int | None
    stored_bytes: int | None
    wall_seconds: float | None
    milestones: dict[str, int] | None = None
    """Milestone counts recorded beside the report (1.5+ stores); ``None``
    for failure records and entries recorded before the session API."""
    path: str = "-"
    """Execution-path provenance: ``report.extra["path"]`` when stamped
    (fast-path sweeps), ``"simulated"`` for unstamped success records
    (every pre-fast-path entry ran the simulator), ``"-"`` for failures
    (no report was produced on either path)."""
    scenario_dict: dict | None = None
    """The serialized scenario, kept for derived dimensions that need to
    reconstruct it (``verdict``); ``None`` only for hand-built facts."""

    @cached_property
    def verdict(self) -> str:
        """The static analyzer's predicted all-Deal verdict for this run
        (:func:`repro.analysis.protocol.analyze_scenario`), computed
        lazily — only ``--by verdict`` aggregations pay for it."""
        if self.scenario_dict is None:
            return "unknown"
        from repro.analysis.protocol import analyze_scenario
        from repro.api.scenario import Scenario

        try:
            scenario = Scenario.from_dict(dict(self.scenario_dict))
        except (ReproError, KeyError, TypeError, ValueError):
            # Old or hand-built store entries may carry scenario dicts
            # from_dict no longer accepts; a stats aggregation must
            # classify them, not crash on them.
            return "invalid"
        return analyze_scenario(scenario, engine=self.engine).verdict


def timing_of(scenario: dict) -> str:
    """The timing-model kind of one serialized scenario dict.

    Reads the scenario's canonical ``timing`` field rather than the
    display name, so hand-built scenarios group correctly too; entries
    recorded before the field existed (or with it omitted) are exactly
    the historical uniform behaviour and group as ``"uniform"``.
    """
    spec = scenario.get("timing")
    if spec is None:
        return "uniform"
    if isinstance(spec, str):
        return spec
    return spec.get("kind", "uniform")


def entry_facts(key: str, entry: dict) -> RunFacts:
    """Flatten one stored entry dict into :class:`RunFacts`."""
    if entry.get("ok"):
        report = entry["report"]
        outcomes: dict[str, str] = report.get("outcomes", {})
        conforming = report.get("conforming", ())
        scenario = report.get("scenario", {})
        name = scenario.get("name", "")
        return RunFacts(
            key=key,
            engine=report.get("engine", "?"),
            scenario_name=name,
            timing=timing_of(scenario),
            ok=True,
            error_type=None,
            all_deal=all(o == _DEAL for o in outcomes.values()),
            thm49_safe=all(
                outcomes.get(v) in _ACCEPTABLE_VALUES for v in conforming
            ),
            completion_time=report.get("completion_time"),
            stored_bytes=report.get("stored_bytes"),
            wall_seconds=report.get("wall_seconds"),
            milestones=entry.get("milestones"),
            path=(report.get("extra") or {}).get("path", "simulated"),
            scenario_dict=scenario,
            **parse_lab_name(name),
        )
    scenario = entry.get("scenario", {})
    name = scenario.get("name", "")
    return RunFacts(
        key=key,
        engine=entry.get("engine", "?"),
        scenario_name=name,
        timing=timing_of(scenario),
        ok=False,
        error_type=entry.get("error_type", "?"),
        all_deal=None,
        thm49_safe=None,
        completion_time=None,
        stored_bytes=None,
        wall_seconds=None,
        scenario_dict=scenario,
        **parse_lab_name(name),
    )


def collect_facts(
    store: RunStore,
    engines: Sequence[str] | None = None,
    families: Sequence[str] | None = None,
    mixes: Sequence[str] | None = None,
) -> list[RunFacts]:
    """Flatten (and optionally filter) every stored run, in store order."""
    facts = []
    for key, entry in store.entries():
        fact = entry_facts(key, entry)
        if engines and fact.engine not in engines:
            continue
        if families and fact.family not in families:
            continue
        if mixes and fact.mix not in mixes:
            continue
        facts.append(fact)
    return facts


def dimensions(facts: Iterable[RunFacts]) -> dict[str, tuple[str, ...]]:
    """The distinct values each group-by dimension takes, sorted."""
    values: dict[str, set[str]] = {dim: set() for dim in DIMENSIONS}
    for fact in facts:
        for dim in DIMENSIONS:
            values[dim].add(getattr(fact, dim))
    return {dim: tuple(sorted(values[dim])) for dim in DIMENSIONS}


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise LabError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise LabError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100
    low, frac = int(rank), rank - int(rank)
    if frac == 0:
        return float(ordered[low])
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


@dataclass(frozen=True)
class GroupStats:
    """Aggregates for one group of runs (one `aggregate` output row).

    Rates are over *successful* runs (failure records carry no
    outcomes); the failure taxonomy counts the rest by ``error_type``.
    """

    group: tuple[tuple[str, str], ...]
    """``((dimension, value), ...)`` in the requested group-by order."""
    runs: int
    ok: int
    all_deal: int
    thm49_safe: int
    completion_mean: float | None
    completion_p50: float | None
    completion_p90: float | None
    stored_bytes_mean: float | None
    wall_ms_total: float
    failures: dict[str, int]
    milestone_means: dict[str, float] = field(default_factory=dict)
    """Mean milestone count per kind, over the group's runs that carry
    milestone data (entries recorded before the session API have none
    and are excluded from the mean, not counted as zero)."""

    @property
    def all_deal_rate(self) -> float:
        return self.all_deal / self.ok if self.ok else 0.0

    @property
    def thm49_safe_rate(self) -> float:
        return self.thm49_safe / self.ok if self.ok else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "group": dict(self.group),
            "runs": self.runs,
            "ok": self.ok,
            "all_deal": self.all_deal,
            "all_deal_rate": self.all_deal_rate,
            "thm49_safe": self.thm49_safe,
            "thm49_safe_rate": self.thm49_safe_rate,
            "completion_mean": self.completion_mean,
            "completion_p50": self.completion_p50,
            "completion_p90": self.completion_p90,
            "stored_bytes_mean": self.stored_bytes_mean,
            "wall_ms_total": self.wall_ms_total,
            "failures": dict(self.failures),
            "milestone_means": dict(self.milestone_means),
        }


def check_dimensions(by: Sequence[str]) -> tuple[str, ...]:
    """Validate group-by dimensions; shared with the ``lab stats`` CLI.

    Accepts the stored :data:`DIMENSIONS` plus the derived ``verdict``
    dimension (the analyzer's predicted all-Deal verdict)."""
    by = tuple(by)
    unknown = [dim for dim in by if dim not in GROUPABLE_DIMENSIONS]
    if not by or unknown:
        raise LabError(
            "group-by dimensions must be among "
            f"{', '.join(GROUPABLE_DIMENSIONS)}; got {list(by) or '<none>'}"
        )
    return by


def aggregate(
    facts: Iterable[RunFacts], by: Sequence[str] = ("engine",)
) -> list[GroupStats]:
    """Group facts by ``by`` dimensions and aggregate each group."""
    by = check_dimensions(by)
    groups: dict[tuple[str, ...], list[RunFacts]] = {}
    for fact in facts:
        groups.setdefault(tuple(getattr(fact, dim) for dim in by), []).append(fact)
    stats = []
    for values in sorted(groups):
        members = groups[values]
        succeeded = [f for f in members if f.ok]
        completions = [
            float(f.completion_time)
            for f in succeeded
            if f.completion_time is not None
        ]
        stored = [f.stored_bytes for f in succeeded if f.stored_bytes is not None]
        with_milestones = [f for f in succeeded if f.milestones is not None]
        milestone_totals: dict[str, float] = {}
        for f in with_milestones:
            for kind, count in f.milestones.items():
                milestone_totals[kind] = milestone_totals.get(kind, 0.0) + count
        milestone_means = {
            kind: total / len(with_milestones)
            for kind, total in sorted(milestone_totals.items())
        }
        stats.append(
            GroupStats(
                group=tuple(zip(by, values)),
                runs=len(members),
                ok=len(succeeded),
                all_deal=sum(bool(f.all_deal) for f in succeeded),
                thm49_safe=sum(bool(f.thm49_safe) for f in succeeded),
                completion_mean=(
                    sum(completions) / len(completions) if completions else None
                ),
                completion_p50=percentile(completions, 50) if completions else None,
                completion_p90=percentile(completions, 90) if completions else None,
                stored_bytes_mean=sum(stored) / len(stored) if stored else None,
                wall_ms_total=sum(
                    (f.wall_seconds or 0.0) * 1000 for f in members
                ),
                failures=dict(
                    Counter(f.error_type for f in members if not f.ok)
                ),
                milestone_means=milestone_means,
            )
        )
    return stats


def stats_payload(
    facts: Sequence[RunFacts], by: Sequence[str] = ("engine",)
) -> dict[str, Any]:
    """The machine-readable shape behind ``lab stats --json``."""
    return {
        "total_runs": len(facts),
        "by": list(check_dimensions(by)),
        "dimensions": {k: list(v) for k, v in dimensions(facts).items()},
        "groups": [gs.to_dict() for gs in aggregate(facts, by)],
    }


# ---------------------------------------------------------------------------
# head-to-head comparison
# ---------------------------------------------------------------------------


def compare(
    facts: Iterable[RunFacts],
    engine_a: str,
    engine_b: str,
    by: str = "family",
) -> list[dict[str, Any]]:
    """Pivot two engines into one head-to-head row per ``by`` value.

    Each row carries both engines' run counts, all-Deal and
    Theorem-4.9 safety rates, and mean completion time, plus the
    safety-rate delta ``b - a``: *positive* means ``engine_b`` is
    safer, so ``compare(facts, "herlihy", "naive-timelock")`` reports
    how much safety the timelock baseline gives up as a negative delta.
    """
    if by not in DIMENSIONS or by == "engine":
        raise LabError(
            f"compare pivots over one of "
            f"{', '.join(d for d in DIMENSIONS if d != 'engine')}; got {by!r}"
        )
    facts = list(facts)
    sides = {
        engine: {
            gs.group[0][1]: gs
            for gs in aggregate(
                [f for f in facts if f.engine == engine], by=(by,)
            )
        }
        for engine in (engine_a, engine_b)
    }
    rows = []
    for value in sorted(set(sides[engine_a]) | set(sides[engine_b])):
        a, b = sides[engine_a].get(value), sides[engine_b].get(value)
        rows.append(
            {
                by: value,
                "runs": ((a.runs if a else 0), (b.runs if b else 0)),
                "all_deal_rate": (
                    a.all_deal_rate if a else None,
                    b.all_deal_rate if b else None,
                ),
                "thm49_safe_rate": (
                    a.thm49_safe_rate if a else None,
                    b.thm49_safe_rate if b else None,
                ),
                "completion_mean": (
                    a.completion_mean if a else None,
                    b.completion_mean if b else None,
                ),
                "safety_delta": (
                    b.thm49_safe_rate - a.thm49_safe_rate if a and b else None
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# presentation helpers (shared by the CLI and scripts)
# ---------------------------------------------------------------------------


def _fmt(value: float | None, spec: str = ".2f") -> str:
    return "-" if value is None else format(value, spec)


#: Compact labels for the milestone column of ``stats_table``.
_MILESTONE_SHORT = {
    milestones.PHASE1_START: "p1",
    milestones.CONTRACT_ESCROWED: "esc",
    milestones.SECRET_RELEASED: "sec",
    milestones.PHASE2_COMPLETE: "p2",
    milestones.SETTLED: "end",
}


def _milestone_cell(means: Mapping[str, float] | None) -> str:
    if not means:
        return "-"
    return ",".join(
        f"{_MILESTONE_SHORT.get(kind, kind)}={mean:.1f}"
        for kind, mean in means.items()
    )


def stats_table(
    stats: Sequence[GroupStats], by: Sequence[str]
) -> tuple[list[str], list[list[object]]]:
    """``(headers, rows)`` for :func:`format_rows` over aggregate output."""
    headers = [*by, "runs", "ok", "all-Deal", "Thm4.9-safe", "t mean",
               "t p90", "bytes", "milestones", "failures"]
    rows: list[list[object]] = []
    for gs in stats:
        taxonomy = ",".join(
            f"{error}x{count}" for error, count in sorted(gs.failures.items())
        )
        rows.append(
            [
                *(value for _, value in gs.group),
                gs.runs,
                gs.ok,
                f"{gs.all_deal_rate:.0%}",
                f"{gs.thm49_safe_rate:.0%}",
                _fmt(gs.completion_mean, ".1f"),
                _fmt(gs.completion_p90, ".1f"),
                _fmt(gs.stored_bytes_mean, ".0f"),
                _milestone_cell(gs.milestone_means),
                taxonomy or "-",
            ]
        )
    return headers, rows


def compare_table(
    rows: Sequence[dict[str, Any]], engine_a: str, engine_b: str, by: str
) -> tuple[list[str], list[list[object]]]:
    """``(headers, rows)`` for :func:`format_rows` over compare output."""

    def pct(value: float | None) -> str:
        return "-" if value is None else f"{value:.0%}"

    headers = [
        by,
        f"runs {engine_a}", f"runs {engine_b}",
        f"all-Deal {engine_a}", f"all-Deal {engine_b}",
        f"safe {engine_a}", f"safe {engine_b}",
        f"t {engine_a}", f"t {engine_b}",
        f"safety Δ ({engine_b}-{engine_a})",
    ]
    table = []
    for row in rows:
        table.append(
            [
                row[by],
                row["runs"][0], row["runs"][1],
                pct(row["all_deal_rate"][0]), pct(row["all_deal_rate"][1]),
                pct(row["thm49_safe_rate"][0]), pct(row["thm49_safe_rate"][1]),
                _fmt(row["completion_mean"][0], ".1f"),
                _fmt(row["completion_mean"][1], ".1f"),
                pct(row["safety_delta"]),
            ]
        )
    return headers, table
