"""Persistent, content-addressed storage for protocol runs.

Every run is addressed by :func:`repro.api.sweep.run_key` — a SHA-256
digest of the engine name plus the scenario's canonical content — and
stores exactly the worker-side entry dict ``run_sweep`` produces:
``{"ok": True, "report": RunReport.to_dict()}`` for successes,
``{"ok": False, ...}`` for scenarios the engine could not express.
Storing failures too means a warm re-run skips *everything* it already
learned, including which scenarios are infeasible.

Three backends share the :class:`RunStore` contract:

* :class:`MemoryStore` — a dict; per-process caching and tests;
* :class:`JsonlStore` — append-only JSON lines; crash-tolerant (a torn
  final line from an interrupted run is ignored on reload), diffable,
  and trivially merge-able with ``cat``;
* :class:`SqliteStore` — an indexed ``sqlite3`` table; the default for
  the ``python -m repro lab`` CLI, scales to large sweeps.

:func:`open_store` picks a backend from the path suffix.  Stores plug
straight into :func:`repro.api.run_sweep` via its ``store=`` parameter.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Iterator

from repro.api.report import RunReport
from repro.errors import StoreError


class RunStore:
    """The storage contract ``run_sweep(store=...)`` relies on.

    ``get`` returns the stored entry dict for a key (or ``None``),
    ``put`` persists one durably before returning.  Everything else is
    convenience built on those two.
    """

    def get(self, key: str) -> dict | None:
        raise NotImplementedError

    def put(self, key: str, entry: dict) -> None:
        raise NotImplementedError

    def keys(self) -> tuple[str, ...]:
        raise NotImplementedError

    def entries(self) -> Iterator[tuple[str, dict]]:
        for key in self.keys():
            entry = self.get(key)
            if entry is not None:
                yield key, entry

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- lookups -------------------------------------------------------------

    def find(self, key_prefix: str) -> list[str]:
        """All stored keys starting with ``key_prefix`` (hex)."""
        return [k for k in self.keys() if k.startswith(key_prefix)]

    def index(self) -> list[tuple[str, str, str, bool]]:
        """One ``(key, engine, scenario_name, ok)`` row per stored run.

        Cheap by contract — no :class:`RunReport` deserialization — so
        listings can filter and slice before touching any report blob;
        :class:`SqliteStore` serves it straight from its denormalised
        columns.
        """
        return [
            (key, *_entry_identity(entry), bool(entry.get("ok")))
            for key, entry in self.entries()
        ]

    def report(self, key: str) -> RunReport:
        """The stored :class:`RunReport` for ``key``.

        Raises :class:`StoreError` if the key is absent or holds a
        failure record rather than a successful run.
        """
        entry = self.get(key)
        if entry is None:
            raise StoreError(f"no run stored under key {key!r}")
        if not entry.get("ok"):
            raise StoreError(
                f"run {key[:12]} is a recorded failure: "
                f"{entry.get('error_type')}: {entry.get('message')}"
            )
        return RunReport.from_dict(entry["report"])

    def reports(self) -> list[RunReport]:
        """Every successfully stored run, in storage order."""
        return [
            RunReport.from_dict(entry["report"])
            for _, entry in self.entries()
            if entry.get("ok")
        ]


class MemoryStore(RunStore):
    """An in-process store; nothing survives the interpreter."""

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}

    def get(self, key: str) -> dict | None:
        return self._entries.get(key)

    def put(self, key: str, entry: dict) -> None:
        self._entries[key] = dict(entry)

    def keys(self) -> tuple[str, ...]:
        return tuple(self._entries)


class JsonlStore(RunStore):
    """Append-only JSON-lines persistence.

    Each ``put`` appends one ``{"key", "recorded_at", "entry"}`` line
    and flushes, so a killed sweep loses at most the line being written.
    On open, undecodable lines (the torn tail of an interrupted write)
    are skipped; later lines for a key shadow earlier ones, making
    re-recording an overwrite without any rewriting of history.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, dict] = {}
        torn_tail = False
        if self.path.exists():
            with self.path.open("rb") as raw:
                content = raw.read()
            torn_tail = bool(content) and not content.endswith(b"\n")
            for line in content.decode("utf-8", errors="replace").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._entries[record["key"]] = record["entry"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn write from an interrupted run
        self._handle = self.path.open("a", encoding="utf-8")
        if torn_tail:
            # Seal the torn line so the next append starts fresh.
            self._handle.write("\n")
            self._handle.flush()

    def get(self, key: str) -> dict | None:
        return self._entries.get(key)

    def put(self, key: str, entry: dict) -> None:
        record = {"key": key, "recorded_at": time.time(), "entry": entry}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._entries[key] = dict(entry)

    def keys(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def close(self) -> None:
        self._handle.close()


class SqliteStore(RunStore):
    """One ``runs`` table in a ``sqlite3`` database.

    Keys are primary; ``put`` is an upsert committed immediately, so
    interrupted sweeps keep every completed run.  The ``engine`` and
    ``scenario_name`` columns are denormalised out of the entry to keep
    ``lab ls`` queries from parsing every report blob.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS runs (
            key           TEXT PRIMARY KEY,
            engine        TEXT NOT NULL,
            scenario_name TEXT NOT NULL,
            ok            INTEGER NOT NULL,
            recorded_at   REAL NOT NULL,
            entry         TEXT NOT NULL
        )
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path))
        self._db.execute(self._SCHEMA)
        self._db.commit()

    def get(self, key: str) -> dict | None:
        row = self._db.execute(
            "SELECT entry FROM runs WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, key: str, entry: dict) -> None:
        engine, name = _entry_identity(entry)
        self._db.execute(
            "INSERT OR REPLACE INTO runs VALUES (?, ?, ?, ?, ?, ?)",
            (
                key,
                engine,
                name,
                1 if entry.get("ok") else 0,
                time.time(),
                json.dumps(entry, sort_keys=True),
            ),
        )
        self._db.commit()

    def keys(self) -> tuple[str, ...]:
        rows = self._db.execute(
            "SELECT key FROM runs ORDER BY recorded_at, key"
        ).fetchall()
        return tuple(row[0] for row in rows)

    def find(self, key_prefix: str) -> list[str]:
        rows = self._db.execute(
            "SELECT key FROM runs WHERE key GLOB ? ORDER BY key",
            (key_prefix + "*",),
        ).fetchall()
        return [row[0] for row in rows]

    def index(self) -> list[tuple[str, str, str, bool]]:
        rows = self._db.execute(
            "SELECT key, engine, scenario_name, ok FROM runs "
            "ORDER BY recorded_at, key"
        ).fetchall()
        return [(key, engine, name, bool(ok)) for key, engine, name, ok in rows]

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def close(self) -> None:
        self._db.close()


def _entry_identity(entry: dict) -> tuple[str, str]:
    """(engine, scenario name) of a stored entry, success or failure."""
    if entry.get("ok"):
        report = entry.get("report", {})
        return (
            report.get("engine", "?"),
            report.get("scenario", {}).get("name", ""),
        )
    return entry.get("engine", "?"), entry.get("scenario", {}).get("name", "")


#: Path suffixes routed to :class:`JsonlStore`.
_JSONL_SUFFIXES = (".jsonl", ".ndjson")


def open_store(path: str | Path) -> RunStore:
    """Open (creating if needed) the store at ``path``.

    ``":memory:"`` gives a :class:`MemoryStore`; ``*.jsonl`` and
    ``*.ndjson`` give a :class:`JsonlStore`; everything else (``*.sqlite``,
    ``*.db``, ...) is a :class:`SqliteStore`.
    """
    if str(path) == ":memory:":
        return MemoryStore()
    path = Path(path)
    if path.suffix in _JSONL_SUFFIXES:
        return JsonlStore(path)
    return SqliteStore(path)
