"""Persistent, content-addressed storage for protocol runs.

Every run is addressed by :func:`repro.api.sweep.run_key` — a SHA-256
digest of the engine name plus the scenario's canonical content — and
stores exactly the worker-side entry dict ``run_sweep`` produces:
``{"ok": True, "report": RunReport.to_dict()}`` for successes,
``{"ok": False, ...}`` for scenarios the engine could not express.
Storing failures too means a warm re-run skips *everything* it already
learned, including which scenarios are infeasible.

Three backends share the :class:`RunStore` contract:

* :class:`MemoryStore` — a dict; per-process caching and tests;
* :class:`JsonlStore` — append-only JSON lines; crash-tolerant (a torn
  final line from an interrupted run is ignored on reload), diffable,
  and trivially merge-able with ``cat``;
* :class:`SqliteStore` — an indexed ``sqlite3`` table; the default for
  the ``python -m repro lab`` CLI, scales to large sweeps.

:func:`open_store` picks a backend from the path suffix.  Stores plug
straight into :func:`repro.api.run_sweep` via its ``store=`` parameter.

Sharded sweeps on different machines produce several stores; any store
absorbs another via :meth:`RunStore.merge_from` (key-idempotent, the
newest ``recorded_at`` wins a conflict), so JSONL and SQLite shards
combine into one analyzable store for :mod:`repro.lab.analytics`.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Iterator

from repro.api.report import RunReport
from repro.errors import StoreError


class RunStore:
    """The storage contract ``run_sweep(store=...)`` relies on.

    ``get`` returns the stored entry dict for a key (or ``None``),
    ``put`` persists one before returning.  Everything else is
    convenience built on those two.

    **Iteration-order contract** (pinned, honored by every backend):
    ``keys()``/``entries()``/``index()`` iterate in *recording order* —
    the order runs were last recorded.  Re-recording an existing key
    moves it to the end, exactly as if it had been deleted and stored
    afresh.  Persistent backends preserve this order across reopen.
    """

    concurrent_safe = False
    """Whether several *processes* may write this store at once without
    corrupting it.  Only :class:`SqliteStore` (WAL + busy timeout +
    transactions) earns ``True``; :mod:`repro.fleet` refuses to
    coordinate over anything else (see
    :class:`~repro.errors.UnsafeFleetStoreError`)."""

    def get(self, key: str) -> dict | None:
        raise NotImplementedError

    def put(self, key: str, entry: dict, recorded_at: float | None = None) -> None:
        """Persist ``entry`` under ``key``.

        ``recorded_at`` defaults to now; :meth:`merge_from` passes the
        source store's timestamp through so provenance survives merging.
        """
        raise NotImplementedError

    def keys(self) -> tuple[str, ...]:
        raise NotImplementedError

    def recorded_at(self, key: str) -> float | None:
        """When ``key`` was last recorded (epoch seconds), if known."""
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - default no-op
        """Make every ``put`` so far crash-durable.

        ``run_sweep`` calls this after recording each completed worker
        chunk, so a killed sweep keeps everything that was recorded
        even on backends that batch their writes (:class:`SqliteStore`).
        """

    def entries(self) -> Iterator[tuple[str, dict]]:
        for key, entry, _ in self.records():
            yield key, entry

    def records(self) -> Iterator[tuple[str, dict, float | None]]:
        """``(key, entry, recorded_at)`` triples in recording order."""
        for key in self.keys():
            entry = self.get(key)
            if entry is not None:
                yield key, entry, self.recorded_at(key)

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sharding ------------------------------------------------------------

    def merge_from(self, other: "RunStore") -> int:
        """Absorb every run of ``other`` into this store.

        Key-idempotent: a key this store already holds is only replaced
        when the incoming record is strictly newer (``recorded_at``), so
        merging the same shard twice — or two shards of one sharded
        sweep in either order — converges to the same store.  A record
        whose timestamp is unknown merges as oldest (epoch 0) so order
        still converges.  Returns the number of records written.
        """
        written = 0
        for key, entry, theirs in other.records():
            theirs = 0.0 if theirs is None else theirs
            mine = self.recorded_at(key)
            if key in self and not (mine is None or theirs > mine):
                if theirs != mine or not _tiebreak_wins(entry, self.get(key)):
                    continue
            self.put(key, entry, recorded_at=theirs)
            written += 1
        return written

    # -- lookups -------------------------------------------------------------

    def find(self, key_prefix: str) -> list[str]:
        """All stored keys starting with ``key_prefix`` (hex)."""
        return [k for k in self.keys() if k.startswith(key_prefix)]

    def index(self) -> list[tuple[str, str, str, bool]]:
        """One ``(key, engine, scenario_name, ok)`` row per stored run.

        Cheap by contract — no :class:`RunReport` deserialization — so
        listings can filter and slice before touching any report blob;
        :class:`SqliteStore` serves it straight from its denormalised
        columns.
        """
        return [
            (key, *_entry_identity(entry), bool(entry.get("ok")))
            for key, entry in self.entries()
        ]

    def report(self, key: str) -> RunReport:
        """The stored :class:`RunReport` for ``key``.

        Raises :class:`StoreError` if the key is absent or holds a
        failure record rather than a successful run.
        """
        entry = self.get(key)
        if entry is None:
            raise StoreError(f"no run stored under key {key!r}")
        if not entry.get("ok"):
            raise StoreError(
                f"run {key[:12]} is a recorded failure: "
                f"{entry.get('error_type')}: {entry.get('message')}"
            )
        return RunReport.from_dict(entry["report"])

    def reports(self) -> list[RunReport]:
        """Every successfully stored run, in storage order."""
        return [
            RunReport.from_dict(entry["report"])
            for _, entry in self.entries()
            if entry.get("ok")
        ]


class MemoryStore(RunStore):
    """An in-process store; nothing survives the interpreter."""

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}
        self._recorded: dict[str, float] = {}

    def get(self, key: str) -> dict | None:
        return self._entries.get(key)

    def put(self, key: str, entry: dict, recorded_at: float | None = None) -> None:
        # pop-then-set keeps the recording-order contract: a re-recorded
        # key moves to the end of iteration.
        self._entries.pop(key, None)
        self._entries[key] = dict(entry)
        self._recorded[key] = time.time() if recorded_at is None else recorded_at

    def keys(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def recorded_at(self, key: str) -> float | None:
        return self._recorded.get(key)


class JsonlStore(RunStore):
    """Append-only JSON-lines persistence.

    Each ``put`` appends one ``{"key", "recorded_at", "entry"}`` line
    and flushes, so a killed sweep loses at most the line being written.
    On open, undecodable lines (the torn tail of an interrupted write)
    are skipped; later lines for a key shadow earlier ones — and take
    over the earlier line's position *at the tail*, honoring the
    recording-order contract — making re-recording an overwrite without
    any rewriting of history.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, dict] = {}
        self._recorded: dict[str, float] = {}
        torn_tail = False
        if self.path.exists():
            with self.path.open("rb") as raw:
                content = raw.read()
            torn_tail = bool(content) and not content.endswith(b"\n")
            for line in content.decode("utf-8", errors="replace").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key, entry = record["key"], record["entry"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn write from an interrupted run
                self._entries.pop(key, None)  # shadowed line moves to the end
                self._entries[key] = entry
                # An unstamped shadowing line also sheds the shadowed
                # line's stamp — the entry it belonged to is gone.
                self._recorded.pop(key, None)
                if isinstance(record.get("recorded_at"), (int, float)):
                    self._recorded[key] = float(record["recorded_at"])
        self._torn_tail = torn_tail
        self._handle = None

    def _writer(self):
        # Opened lazily so read-only consumers (lab stats, merge
        # sources, possibly on read-only mounts) never touch the file.
        if self._handle is None:
            try:
                self._handle = self.path.open("a", encoding="utf-8")
            except OSError as error:
                raise StoreError(
                    f"cannot write to jsonl store {self.path}: {error}"
                ) from error
            if self._torn_tail:
                # Seal the torn line so the next append starts fresh.
                self._handle.write("\n")
                self._handle.flush()
                self._torn_tail = False
        return self._handle

    def get(self, key: str) -> dict | None:
        return self._entries.get(key)

    def put(self, key: str, entry: dict, recorded_at: float | None = None) -> None:
        stamp = time.time() if recorded_at is None else recorded_at
        record = {"key": key, "recorded_at": stamp, "entry": entry}
        writer = self._writer()
        writer.write(json.dumps(record, sort_keys=True) + "\n")
        writer.flush()
        self._entries.pop(key, None)
        self._entries[key] = dict(entry)
        self._recorded[key] = stamp

    def keys(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def recorded_at(self, key: str) -> float | None:
        return self._recorded.get(key)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


#: The ``runs`` table DDL, shared with :class:`repro.fleet.coordinator.
#: FleetCoordinator` — the fleet lays its lease tables beside this one
#: in the same database so chunk commits and lease releases can share a
#: transaction.
RUNS_SCHEMA = """
    CREATE TABLE IF NOT EXISTS runs (
        key           TEXT PRIMARY KEY,
        engine        TEXT NOT NULL,
        scenario_name TEXT NOT NULL,
        ok            INTEGER NOT NULL,
        recorded_at   REAL NOT NULL,
        entry         TEXT NOT NULL
    )
"""


def entry_row(
    key: str, entry: dict, recorded_at: float | None = None
) -> tuple[str, str, str, int, float, str]:
    """One ``runs`` row (the :data:`RUNS_SCHEMA` column order) for an
    entry dict.  Shared by :meth:`SqliteStore.put` and the fleet
    coordinator's atomic chunk commit, so both write byte-identical
    rows."""
    engine, name = _entry_identity(entry)
    return (
        key,
        engine,
        name,
        1 if entry.get("ok") else 0,
        time.time() if recorded_at is None else recorded_at,
        json.dumps(entry, sort_keys=True),
    )


class SqliteStore(RunStore):
    """One ``runs`` table in a ``sqlite3`` database.

    Keys are primary; ``put`` is an upsert.  Commits are batched: at
    most ``commit_every - 1`` puts are ever uncommitted (and ``close``
    / context-manager exit always commits), trading a bounded window of
    crash loss for an order-of-magnitude fewer fsyncs on bulk writes —
    ``commit_every=1`` restores commit-per-put durability, and
    ``run_sweep`` calls :meth:`flush` after every recorded worker
    chunk, so sweep results are never in the crash window.  The
    ``engine`` and ``scenario_name`` columns are denormalised out of
    the entry to keep ``lab ls`` queries from parsing every report
    blob.  Iteration follows rowid, which ``INSERT OR REPLACE``
    reassigns on overwrite — exactly the recording-order contract.

    Concurrency: the store opens in WAL journal mode with a
    ``busy_timeout`` (default 5 s), so a long-lived writer — the
    :mod:`repro.serve` daemon recording settled runs — and concurrent
    ``lab stats`` / ``lab ls`` readers in other processes do not block
    each other: WAL readers see the last committed snapshot while a
    write transaction is open, and a second writer waits out the busy
    timeout instead of failing immediately.  Filesystems that cannot
    take WAL (some network mounts) silently keep the default journal —
    the store works, just without concurrent readers.
    """

    _SCHEMA = RUNS_SCHEMA

    concurrent_safe = True

    def __init__(
        self,
        path: str | Path,
        commit_every: int = 8,
        busy_timeout_ms: int = 5000,
    ) -> None:
        if commit_every < 1:
            raise StoreError(f"commit_every must be >= 1, got {commit_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.commit_every = commit_every
        self._uncommitted = 0
        try:
            self._db = sqlite3.connect(str(self.path))
            self._db.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
            # Best-effort: journal_mode returns the mode actually in
            # force; a filesystem that refuses WAL answers with the
            # old mode and everything still works single-writer.
            self.journal_mode = self._db.execute(
                "PRAGMA journal_mode = WAL"
            ).fetchone()[0]
            self._db.execute(self._SCHEMA)
            self._db.commit()
        except sqlite3.Error as error:
            # e.g. an existing file that is not a database; surface it
            # as a domain error so the CLI reports it instead of a
            # traceback.
            raise StoreError(
                f"cannot open sqlite store {self.path}: {error}"
            ) from error

    def _row(self, key: str, entry: dict, recorded_at: float | None) -> tuple:
        return entry_row(key, entry, recorded_at)

    def get(self, key: str) -> dict | None:
        row = self._db.execute(
            "SELECT entry FROM runs WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, key: str, entry: dict, recorded_at: float | None = None) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO runs VALUES (?, ?, ?, ?, ?, ?)",
            self._row(key, entry, recorded_at),
        )
        self._uncommitted += 1
        if self._uncommitted >= self.commit_every:
            self.commit()

    def commit(self) -> None:
        """Flush any deferred puts to disk."""
        self._db.commit()
        self._uncommitted = 0

    def flush(self) -> None:
        if self._uncommitted:
            self.commit()

    def merge_from(self, other: RunStore) -> int:
        """Absorb ``other`` in a single ``executemany`` transaction."""
        # One scan of the destination, not a recorded_at() SELECT per
        # incoming record.
        held = dict(
            self._db.execute("SELECT key, recorded_at FROM runs").fetchall()
        )
        rows = []
        for key, entry, theirs in other.records():
            theirs = 0.0 if theirs is None else theirs
            mine = held.get(key)
            if mine is not None and not theirs > mine:
                if theirs != mine or not _tiebreak_wins(entry, self.get(key)):
                    continue
            rows.append(self._row(key, entry, theirs))
        self._db.executemany(
            "INSERT OR REPLACE INTO runs VALUES (?, ?, ?, ?, ?, ?)", rows
        )
        self.commit()
        return len(rows)

    def keys(self) -> tuple[str, ...]:
        rows = self._db.execute("SELECT key FROM runs ORDER BY rowid").fetchall()
        return tuple(row[0] for row in rows)

    def recorded_at(self, key: str) -> float | None:
        row = self._db.execute(
            "SELECT recorded_at FROM runs WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def find(self, key_prefix: str) -> list[str]:
        rows = self._db.execute(
            "SELECT key FROM runs WHERE key GLOB ? ORDER BY key",
            (key_prefix + "*",),
        ).fetchall()
        return [row[0] for row in rows]

    def index(self) -> list[tuple[str, str, str, bool]]:
        rows = self._db.execute(
            "SELECT key, engine, scenario_name, ok FROM runs ORDER BY rowid"
        ).fetchall()
        return [(key, engine, name, bool(ok)) for key, engine, name, ok in rows]

    def records(self) -> Iterator[tuple[str, dict, float | None]]:
        # One scan, not one SELECT per key — analytics and merges walk
        # whole stores, where N+1 lookups would dominate.
        cursor = self._db.execute(
            "SELECT key, entry, recorded_at FROM runs ORDER BY rowid"
        )
        for key, raw, stamp in cursor:  # streamed, not fetchall'd
            yield key, json.loads(raw), stamp

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def close(self) -> None:
        # flush(), not commit(): it no-ops when nothing is pending, so
        # close() stays idempotent (sqlite3's own close already is).
        self.flush()
        self._db.close()


def _tiebreak_wins(incoming: dict, current: dict | None) -> bool:
    """Deterministic winner between two entries with equal timestamps.

    Two shards can record the same run key at the same instant with
    entries differing only in machine-local fields (``wall_seconds``).
    Strictly-newer-wins alone would keep whichever shard merged first;
    comparing canonical serializations instead makes merge order
    irrelevant, preserving the convergence guarantee.
    """
    if current is None:
        return True
    return json.dumps(incoming, sort_keys=True) > json.dumps(
        current, sort_keys=True
    )


def _entry_identity(entry: dict) -> tuple[str, str]:
    """(engine, scenario name) of a stored entry, success or failure."""
    if entry.get("ok"):
        report = entry.get("report", {})
        return (
            report.get("engine", "?"),
            report.get("scenario", {}).get("name", ""),
        )
    return entry.get("engine", "?"), entry.get("scenario", {}).get("name", "")


#: Path suffixes routed to :class:`JsonlStore`.
_JSONL_SUFFIXES = (".jsonl", ".ndjson")


def open_store(path: str | Path) -> RunStore:
    """Open (creating if needed) the store at ``path``.

    ``":memory:"`` gives a :class:`MemoryStore`; ``*.jsonl`` and
    ``*.ndjson`` give a :class:`JsonlStore`; everything else (``*.sqlite``,
    ``*.db``, ...) is a :class:`SqliteStore`.
    """
    if str(path) == ":memory:":
        return MemoryStore()
    path = Path(path)
    if path.suffix in _JSONL_SUFFIXES:
        return JsonlStore(path)
    return SqliteStore(path)
