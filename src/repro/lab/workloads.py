"""Seeded workload generation: topology families × adversary mixes.

A *topology family* is a named, parameterized, deterministic generator
of swap digraphs (``cycle``, ``clique``, ``erdos-renyi``, ``star``,
``wheel``, ``multigraph-cycle``, and the non-strongly-connected
``two-coalition`` / ``chain`` impossibility families).  An *adversary
mix* turns one topology into scenario overrides — fault plans, deviating
strategies, or engine params — again deterministically from a seed
(``all-conforming``, ``phase-crash``, ``last-moment``, ``free-ride``,
``timeout-attack``, ``colluding-crash``).

A *timing profile* names a :mod:`repro.sim.timing` spec (``uniform``,
``jittered``, ``stragglers``, ...) so the paper's Δ assumption can be
swept like any other axis.

A :class:`Workload` crosses one family's parameter grid with a set of
mixes, engines, and timing profiles; :func:`build_sweep` expands it (or
several) into a
:class:`repro.api.Sweep` whose scenarios are fully determined by the
workload — the same workload always produces the same
:func:`repro.api.sweep.run_key` for every run, which is what makes the
:mod:`repro.lab.store` cache hit across processes and days.

Registration lives in :mod:`repro.lab.registry`; this module holds the
shapes and the expansion logic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from random import Random
from typing import Any, Callable, Iterable, Mapping

from repro.api.scenario import Scenario
from repro.api.sweep import Sweep, derive_seed
from repro.digraph.digraph import Digraph, Vertex
from repro.digraph.multigraph import MultiDigraph
from repro.errors import LabError
from repro.sim.faults import CrashPoint, FaultPlan

Topology = Digraph | MultiDigraph

#: Scenario overrides one adversary mix produces for one topology.
Overrides = dict[str, Any]


@dataclass(frozen=True)
class TopologyFamily:
    """One named generator of swap topologies.

    ``build(params, rng)`` must be deterministic in ``(params, rng
    state)``; families that take no randomness simply ignore ``rng``.
    ``defaults`` double as documentation of the accepted params.
    """

    name: str
    description: str
    build: Callable[[dict[str, Any], Random], Topology]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    strongly_connected: bool = True
    """Whether generated topologies satisfy Theorem 3.5's precondition.
    ``False`` marks the impossibility families: protocol engines refuse
    them, reproducing the free-riding result constructively."""

    def generate(self, params: Mapping[str, Any] | None = None, seed: int = 0) -> Topology:
        """Build one topology; same ``(params, seed)`` → equal topology."""
        merged = dict(self.defaults)
        unknown = set(params or ()) - set(merged)
        if unknown:
            raise LabError(
                f"family {self.name!r} does not take params {sorted(unknown)}; "
                f"accepted: {sorted(merged)}"
            )
        merged.update(params or {})
        return self.build(merged, Random(seed))


@dataclass(frozen=True)
class AdversaryMix:
    """One named adversary environment applied on top of a topology.

    ``apply(topology, rng)`` returns ``Scenario`` override kwargs —
    any of ``faults``, ``strategies``, ``params`` — choosing victims
    and attack points deterministically from ``rng``.
    """

    name: str
    description: str
    apply: Callable[[Topology, Random], Overrides]


@dataclass(frozen=True)
class TimingProfile:
    """One named timing model registered for lab workloads.

    ``spec`` is the value handed to :attr:`repro.api.Scenario.timing`
    (``None`` for the back-compat uniform default, otherwise a
    ``{"kind": ..., **params}`` dict — see :mod:`repro.sim.timing`).
    Registering a profile makes it crossable with families and mixes
    via :attr:`Workload.timings` and ``lab run --timing``.
    """

    name: str
    description: str
    spec: dict[str, Any] | None = None


def _sorted_parties(topology: Topology) -> list[Vertex]:
    return sorted(topology.vertices)


def no_adversary(topology: Topology, rng: Random) -> Overrides:
    """Everyone conforms; the Theorem 4.2 all-Deal regime."""
    return {}


def phase_crash(topology: Topology, rng: Random) -> Overrides:
    """One party halts at a protocol milestone (the §1 failure model)."""
    victim = rng.choice(_sorted_parties(topology))
    point = rng.choice(sorted(CrashPoint, key=lambda p: p.value))
    return {"faults": FaultPlan().crash(victim, at_point=point)}


def last_moment(topology: Topology, rng: Random) -> Overrides:
    """One party plays the last-moment unlock (the §1 timeout attack)."""
    attacker = rng.choice(_sorted_parties(topology))
    return {"strategies": {attacker: "last-moment-unlock"}}


def free_ride(topology: Topology, rng: Random) -> Overrides:
    """A coalition claims incoming assets but never honours its own arcs.

    On non-strongly-connected topologies the coalition is a *source*
    strongly connected component of the condensation — the side nothing
    outside can pay back, exactly Lemma 3.4's profitable deviation.  On
    strongly connected topologies no such side exists, so a random third
    of the parties plays greedy instead, and the same greed only hurts
    them (Theorem 4.9 keeps conforming parties whole).
    """
    from repro.digraph.paths import strongly_connected_components

    digraph = (
        topology.underlying_simple()
        if isinstance(topology, MultiDigraph)
        else topology
    )
    components = strongly_connected_components(digraph)
    sources = [
        component
        for component in components
        if not any(
            u not in component and v in component for u, v in digraph.arcs
        )
    ]
    if len(components) > 1 and sources:
        coalition = min(sources, key=lambda c: tuple(sorted(c)))
    else:
        coalition = rng.sample(
            _sorted_parties(topology), max(1, len(topology.vertices) // 3)
        )
    return {"strategies": {v: "greedy-claim-only" for v in sorted(coalition)}}


def timeout_attack(topology: Topology, rng: Random) -> Overrides:
    """The ``naive-timelock`` baseline's worst case: a designated
    attacker reveals at the shared deadline (params-based, so it targets
    the baseline engine rather than strategy-accepting ones)."""
    return {"params": {"attacker": rng.choice(_sorted_parties(topology))}}


def colluding_crash(topology: Topology, rng: Random) -> Overrides:
    """A coalition mixing phase-boundary crashes with deviations.

    One coalition member halts at a seeded protocol milestone while the
    rest split between the last-moment unlock and pure free-riding —
    the strongest combined deviation a single mix can stage.  Theorem
    4.9's claim is exactly that no such coalition (crash + arbitrary
    deviation) can push a *conforming* party Underwater; this mix is
    the lab's standing probe of that claim.  Coalition size is roughly
    a third of the parties, never fewer than two (a crash alone is
    ``phase-crash``).
    """
    parties = _sorted_parties(topology)
    size = min(len(parties), max(2, len(parties) // 3 + 1))
    coalition = rng.sample(parties, size)
    crasher = coalition[0]
    point = rng.choice(
        [CrashPoint.AFTER_PHASE_ONE_PUBLISH, CrashPoint.BEFORE_PHASE_TWO]
    )
    strategies = {
        member: "last-moment-unlock" if i % 2 == 0 else "greedy-claim-only"
        for i, member in enumerate(coalition[1:])
    }
    return {
        "faults": FaultPlan().crash(crasher, at_point=point),
        "strategies": strategies,
    }


@dataclass(frozen=True)
class Workload:
    """One family's parameter grid crossed with mixes and engines.

    ``grid`` maps family params to a value or a list of values; listed
    values are swept (cartesian product in sorted-key order).  Every
    scenario seed, topology seed, and adversary choice derives from
    ``seed`` via :func:`repro.api.sweep.derive_seed`, so a workload is a
    pure value: expanding it twice yields scenario-for-scenario
    identical sweeps.
    """

    family: str
    grid: Mapping[str, Any] = field(default_factory=dict)
    mixes: tuple[str, ...] = ("all-conforming",)
    engines: tuple[str, ...] = ("herlihy",)
    seed: int = 7
    name: str = ""
    scenario_kwargs: Mapping[str, Any] = field(default_factory=dict)
    """Extra :class:`Scenario` fields applied to every run (delta,
    timeout_slack, use_broadcast, ...)."""
    timings: tuple[str, ...] = ("uniform",)
    """Registered timing-profile names crossed into the grid (see
    ``lab timings``).  The default single ``uniform`` entry keeps the
    expansion — and every run key — identical to pre-timing workloads.
    Appended after the pre-1.4 fields so positional construction keeps
    its old meaning."""

    def label(self) -> str:
        return self.name or self.family


def expand_grid(grid: Mapping[str, Any]) -> list[dict[str, Any]]:
    """All param combinations, lists swept in sorted-key order.

    ``{"n": [3, 5], "p": 0.2}`` → ``[{"n": 3, "p": 0.2},
    {"n": 5, "p": 0.2}]``.  A non-list value is fixed across the grid;
    an empty grid yields the single empty combination (family defaults).
    """
    keys = sorted(grid)
    axes = [
        list(grid[k]) if isinstance(grid[k], (list, tuple)) else [grid[k]]
        for k in keys
    ]
    return [dict(zip(keys, combo)) for combo in itertools.product(*axes)]


def _params_label(params: Mapping[str, Any]) -> str:
    return ",".join(f"{k}={params[k]}" for k in sorted(params)) or "defaults"


def build_sweep(
    workloads: Workload | Iterable[Workload],
    name: str = "lab",
    base_seed: int | None = None,
) -> Sweep:
    """Expand workload(s) into one deterministic :class:`Sweep`.

    Expansion order: workload → grid combination → mix → engine.  Each
    scenario's seed derives from its workload's seed plus its position,
    so inserting a new workload at the end never perturbs the scenarios
    (or store keys) of the ones before it.  ``base_seed``, when given,
    replaces every workload's seed — this is how ``lab run --seed``
    re-rolls a whole preset.
    """
    from repro.lab.registry import get_family, get_mix, get_timing

    if isinstance(workloads, Workload):
        workloads = [workloads]
    workloads = list(workloads)
    if not workloads:
        raise LabError("build_sweep needs at least one workload")
    if base_seed is not None:
        workloads = [replace(w, seed=base_seed) for w in workloads]
    sweep = Sweep(name, workloads[0].seed)
    for workload in workloads:
        family = get_family(workload.family)
        timings = [get_timing(t) for t in (workload.timings or ("uniform",))]
        for combo_index, params in enumerate(expand_grid(workload.grid)):
            topology = family.generate(
                params,
                seed=derive_seed(workload.seed, f"topology:{family.name}", combo_index),
            )
            for mix_name in workload.mixes:
                mix = get_mix(mix_name)
                for engine in workload.engines:
                    # Fresh-seeded per call, so the same overrides come
                    # out for every timing variant of this (mix, engine).
                    overrides = mix.apply(
                        topology,
                        Random(
                            derive_seed(
                                workload.seed,
                                f"mix:{mix_name}:{engine}",
                                combo_index,
                            )
                        ),
                    )
                    for timing in timings:
                        index = len(sweep)
                        # The timing tag rides on the engine segment so
                        # parse_lab_name's right-anchored family/params/
                        # mix fields stay where they always were.
                        engine_label = (
                            engine
                            if timing.spec is None
                            else f"{engine}@{timing.name}"
                        )
                        scenario = Scenario(
                            topology=topology,
                            name=(
                                f"lab:{workload.label()}:{_params_label(params)}"
                                f":{mix_name}:{engine_label}#{index}"
                            ),
                            seed=derive_seed(workload.seed, engine, index),
                            **_merge_timing(
                                _merge_kwargs(
                                    workload.scenario_kwargs, overrides, mix_name
                                ),
                                timing,
                            ),
                        )
                        sweep.add(engine, scenario)
    return sweep


def _merge_timing(
    kwargs: dict[str, Any], timing: "TimingProfile"
) -> dict[str, Any]:
    """Apply one timing profile's spec to merged scenario kwargs.

    A workload may pin ``timing`` through ``scenario_kwargs`` *or*
    sweep it through :attr:`Workload.timings` — both at once is a
    contradiction the caller should hear about.
    """
    if timing.spec is None:
        return kwargs  # uniform: leave the field (and the run key) alone
    if "timing" in kwargs:
        raise LabError(
            f"timing profile {timing.name!r} and the workload's "
            "scenario_kwargs both set 'timing'; drop one of them"
        )
    return {**kwargs, "timing": timing.spec}


def _merge_kwargs(
    base: Mapping[str, Any], overrides: Overrides, mix_name: str
) -> dict[str, Any]:
    """Workload-level scenario kwargs merged with one mix's overrides.

    Dict-valued fields (``params``, ``strategies``) merge key-wise with
    the mix winning ties; any other shared field is a contradiction the
    caller should hear about rather than a silent pick.
    """
    merged = dict(base)
    for key, value in overrides.items():
        if key not in merged:
            merged[key] = value
        elif isinstance(value, dict) and isinstance(merged[key], dict):
            merged[key] = {**merged[key], **value}
        else:
            raise LabError(
                f"mix {mix_name!r} and the workload's scenario_kwargs both "
                f"set {key!r}; drop one of them"
            )
    return merged


# ---------------------------------------------------------------------------
# impossibility evidence
# ---------------------------------------------------------------------------


def impossibility_evidence(topology: Topology):
    """Lemma 3.4's profitable free-ride deviation, constructed.

    For a non-strongly-connected topology returns the
    :class:`repro.analysis.attacks.FreeRideDemo` whose
    ``coalition_gain > 0`` certifies that no protocol can protect the
    cut-off side; raises :class:`~repro.errors.DigraphError` when the
    topology is strongly connected (no such pair of vertices exists).
    """
    from repro.analysis.attacks import free_ride_partition

    digraph = (
        topology.underlying_simple()
        if isinstance(topology, MultiDigraph)
        else topology
    )
    return free_ride_partition(digraph)
