"""The workload registry: topology families, adversary mixes, presets.

Everything is registered by name so workloads stay serializable and the
``python -m repro lab`` CLI can enumerate what exists.  Third-party code
extends the lab the same way the built-ins register themselves:

    from repro.lab import TopologyFamily, register_family

    register_family(TopologyFamily(
        "my-topology", "what it stresses", build_fn, {"n": 5},
    ))

Built-in families (``list_families``):

========================= ==================================================
``cycle``                 single directed cycle (§1 generalised, 1 leader)
``clique``                bidirectional complete digraph (max-leader, Fig. 6-8)
``erdos-renyi``           random Hamiltonian cycle + p-chords (strongly
                          connected Erdős–Rényi-style digraph)
``star``                  hub ⇄ spokes broker (single leader)
``wheel``                 star + rim cycle (two-leader minimum FVS)
``petal``                 k cycles through one hub (single leader, high diam)
``multigraph-cycle``      §5 cycle with parallel keyed arcs
``power-law``             heavy-tailed in/out degrees (Zipf-weighted hubs)
``two-coalition``         NOT strongly connected: Lemma 3.4 free-ride family
``chain``                 NOT strongly connected: directed path
========================= ==================================================

Built-in adversary mixes (``list_mixes``): ``all-conforming``,
``phase-crash``, ``last-moment``, ``free-ride``, ``timeout-attack``,
``colluding-crash`` (phase-boundary crash + deviating strategies in one
coalition).

Built-in timing profiles (``list_timings``): ``uniform``, ``jittered``,
``stragglers``, ``straggler-pair`` — named :mod:`repro.sim.timing`
specs crossable with families and mixes via :attr:`Workload.timings`
and ``lab run --timing``.

Presets (``list_presets``) bundle workloads for the CLI: ``smoke``,
``topologies``, ``adversaries``, ``impossibility``, ``scale``, and
``timings`` (timing × family × mix cross).
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.digraph.generators import (
    chain_digraph,
    complete_digraph,
    cycle_digraph,
    petal_digraph,
    powerlaw_strongly_connected,
    random_strongly_connected,
    star_digraph,
    two_coalition_digraph,
    wheel_digraph,
)
from repro.digraph.multigraph import MultiDigraph
from repro.errors import LabError, UnknownWorkloadError
from repro.lab.workloads import (
    AdversaryMix,
    TimingProfile,
    TopologyFamily,
    Workload,
    colluding_crash,
    free_ride,
    last_moment,
    no_adversary,
    phase_crash,
    timeout_attack,
)

_FAMILIES: dict[str, TopologyFamily] = {}
_MIXES: dict[str, AdversaryMix] = {}
_TIMINGS: dict[str, TimingProfile] = {}
_PRESETS: dict[str, tuple[Workload, ...]] = {}


def register_family(family: TopologyFamily, replace: bool = False) -> TopologyFamily:
    if family.name in _FAMILIES and not replace:
        raise LabError(f"topology family {family.name!r} is already registered")
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> TopologyFamily:
    try:
        return _FAMILIES[name]
    except KeyError:
        raise UnknownWorkloadError("topology family", name, tuple(_FAMILIES)) from None


def list_families() -> tuple[str, ...]:
    return tuple(sorted(_FAMILIES))


def register_mix(mix: AdversaryMix, replace: bool = False) -> AdversaryMix:
    if mix.name in _MIXES and not replace:
        raise LabError(f"adversary mix {mix.name!r} is already registered")
    _MIXES[mix.name] = mix
    return mix


def get_mix(name: str) -> AdversaryMix:
    try:
        return _MIXES[name]
    except KeyError:
        raise UnknownWorkloadError("adversary mix", name, tuple(_MIXES)) from None


def list_mixes() -> tuple[str, ...]:
    return tuple(sorted(_MIXES))


def register_timing(profile: TimingProfile, replace: bool = False) -> TimingProfile:
    if profile.name in _TIMINGS and not replace:
        raise LabError(f"timing profile {profile.name!r} is already registered")
    if profile.spec is not None:
        # Fail at registration, not mid-sweep: the spec must resolve.
        from repro.sim.timing import resolve_timing

        resolve_timing(profile.spec)
    _TIMINGS[profile.name] = profile
    return profile


def get_timing(name: str) -> TimingProfile:
    try:
        return _TIMINGS[name]
    except KeyError:
        raise UnknownWorkloadError("timing profile", name, tuple(_TIMINGS)) from None


def list_timings() -> tuple[str, ...]:
    return tuple(sorted(_TIMINGS))


def register_preset(name: str, *workloads: Workload, replace: bool = False) -> None:
    if name in _PRESETS and not replace:
        raise LabError(f"preset {name!r} is already registered")
    _PRESETS[name] = tuple(workloads)


def get_preset(name: str) -> tuple[Workload, ...]:
    try:
        return _PRESETS[name]
    except KeyError:
        raise UnknownWorkloadError("preset", name, tuple(_PRESETS)) from None


def list_presets() -> tuple[str, ...]:
    return tuple(sorted(_PRESETS))


# ---------------------------------------------------------------------------
# built-in topology families
# ---------------------------------------------------------------------------


def _build_multigraph_cycle(params: dict[str, Any], rng: Random) -> MultiDigraph:
    base = cycle_digraph(int(params["n"]))
    copies = int(params["copies"])
    if copies < 1:
        raise LabError("multigraph-cycle needs copies >= 1")
    arcs = [(u, v, k) for (u, v) in base.arcs for k in range(copies)]
    return MultiDigraph(base.vertices, arcs)


for _family in (
    TopologyFamily(
        "cycle",
        "single directed cycle: the §1 swap generalised to n parties",
        lambda p, rng: cycle_digraph(int(p["n"])),
        {"n": 3},
    ),
    TopologyFamily(
        "clique",
        "bidirectional complete digraph: every party pays every other",
        lambda p, rng: complete_digraph(int(p["n"])),
        {"n": 3},
    ),
    TopologyFamily(
        "erdos-renyi",
        "random strongly connected digraph: Hamiltonian cycle + p-chords",
        lambda p, rng: random_strongly_connected(int(p["n"]), float(p["p"]), rng),
        {"n": 6, "p": 0.25},
    ),
    TopologyFamily(
        "star",
        "hub ⇄ spokes broker topology (single leader)",
        lambda p, rng: star_digraph(int(p["points"])),
        {"points": 3},
    ),
    TopologyFamily(
        "wheel",
        "star plus a rim cycle (minimum FVS of two)",
        lambda p, rng: wheel_digraph(int(p["rim"])),
        {"rim": 4},
    ),
    TopologyFamily(
        "petal",
        "k cycles sharing one hub (single leader, diameter stress)",
        lambda p, rng: petal_digraph(int(p["petals"]), int(p["petal_size"])),
        {"petals": 3, "petal_size": 3},
    ),
    TopologyFamily(
        "multigraph-cycle",
        "§5 multigraph: a cycle with `copies` parallel keyed arcs per pair",
        _build_multigraph_cycle,
        {"n": 3, "copies": 2},
    ),
    TopologyFamily(
        "power-law",
        "heavy-tailed in/out degrees: Hamiltonian cycle + Zipf-weighted "
        "extra arcs (hub-dominated, stresses FVS and longest paths)",
        lambda p, rng: powerlaw_strongly_connected(
            int(p["n"]), float(p["exponent"]), int(p["extra"]), rng
        ),
        {"n": 8, "exponent": 2.2, "extra": 16},
    ),
    TopologyFamily(
        "two-coalition",
        "NOT strongly connected: two cycles, one-way bridges (Lemma 3.4)",
        lambda p, rng: two_coalition_digraph(
            int(p["left"]), int(p["right"]), int(p["bridges"])
        ),
        {"left": 2, "right": 2, "bridges": 1},
        strongly_connected=False,
    ),
    TopologyFamily(
        "chain",
        "NOT strongly connected: a directed path (impossibility side)",
        lambda p, rng: chain_digraph(int(p["n"])),
        {"n": 3},
        strongly_connected=False,
    ),
):
    register_family(_family)


# ---------------------------------------------------------------------------
# built-in adversary mixes
# ---------------------------------------------------------------------------

for _mix in (
    AdversaryMix(
        "all-conforming",
        "everyone follows the protocol (Theorem 4.2 all-Deal regime)",
        no_adversary,
    ),
    AdversaryMix(
        "phase-crash",
        "one party halts at a protocol milestone (§1 failure model)",
        phase_crash,
    ),
    AdversaryMix(
        "last-moment",
        "one party plays the last-moment unlock (§1 timeout attack)",
        last_moment,
    ),
    AdversaryMix(
        "free-ride",
        "a coalition claims incoming assets, honours nothing (Lemma 3.4)",
        free_ride,
    ),
    AdversaryMix(
        "timeout-attack",
        "naive-timelock baseline's shared-deadline reveal (params-based)",
        timeout_attack,
    ),
    AdversaryMix(
        "colluding-crash",
        "coalition: one phase-boundary crash + last-moment/free-ride "
        "strategies in concert (the combined Thm 4.9 stressor)",
        colluding_crash,
    ),
):
    register_mix(_mix)


# ---------------------------------------------------------------------------
# built-in timing profiles
# ---------------------------------------------------------------------------

for _timing in (
    TimingProfile(
        "uniform",
        "every party shares the configured conforming profile (default)",
        None,
    ),
    TimingProfile(
        "jittered",
        "per-party seeded delays within the conforming Δ budget "
        "(round trip ≤ Δ; probes the strict-deadline boundary)",
        {"kind": "jittered"},
    ),
    TimingProfile(
        "stragglers",
        "one seeded party violates reaction+action ≤ Δ (3Δ round trip; "
        "the regime Theorem 4.9 does not cover)",
        {"kind": "stragglers"},
    ),
    TimingProfile(
        "straggler-pair",
        "two seeded parties violate the Δ assumption together",
        {"kind": "stragglers", "count": 2},
    ),
    TimingProfile(
        "adaptive-stragglers",
        "one seeded party conforms until `secret-released`, then spends "
        "the whole violation budget at once (milestone intervention; "
        "strictly nastier than static at moderate budgets)",
        {"kind": "adaptive-stragglers"},
    ),
    TimingProfile(
        "adaptive-stragglers-tight",
        "the adaptive straggler at the violation=2 boundary budget, "
        "where static stragglers still mostly complete all-Deal",
        {"kind": "adaptive-stragglers", "violation": 2.0},
    ),
    TimingProfile(
        "stragglers-tight",
        "the static straggler at the violation=2 boundary budget "
        "(head-to-head partner of adaptive-stragglers-tight)",
        {"kind": "stragglers", "violation": 2.0},
    ),
):
    register_timing(_timing)


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

#: Mixes every strategy-accepting engine (herlihy, multiswap) can honour.
_STRATEGY_MIXES = ("all-conforming", "phase-crash", "last-moment", "free-ride")

register_preset(
    "smoke",
    Workload("cycle", {"n": [3, 4]}, engines=(
        "herlihy", "single-leader", "multiswap",
        "naive-timelock", "sequential-trust", "2pc",
    )),
)

register_preset(
    "topologies",
    Workload("cycle", {"n": [3, 5, 8]}),
    Workload("clique", {"n": [3, 4]}),
    Workload("erdos-renyi", {"n": [6, 8], "p": 0.2}),
    Workload("star", {"points": [3, 5]}),
    Workload("wheel", {"rim": [4, 6]}),
    Workload("petal", {"petals": [2, 4]}),
    Workload("multigraph-cycle", {"n": 3, "copies": [2, 3]}, engines=("multiswap",)),
    # Appended after the originals so their run keys never shift.
    Workload("power-law", {"n": [8, 12]}, scenario_kwargs={"exact_limit": 10}),
)

register_preset(
    "adversaries",
    Workload("cycle", {"n": [3, 5]}, mixes=_STRATEGY_MIXES),
    Workload("clique", {"n": 3}, mixes=_STRATEGY_MIXES),
    Workload("wheel", {"rim": 4}, mixes=_STRATEGY_MIXES),
    Workload("cycle", {"n": 3}, mixes=("timeout-attack",), engines=("naive-timelock",)),
    # Appended after the originals so their run keys never shift.
    Workload("cycle", {"n": [4, 6]}, mixes=("colluding-crash",)),
    Workload("power-law", {"n": 8}, mixes=("colluding-crash",),
             scenario_kwargs={"exact_limit": 10}),
)

register_preset(
    "timings",
    Workload("cycle", {"n": [3, 5]},
             mixes=("all-conforming", "phase-crash"),
             timings=("uniform", "jittered", "stragglers")),
    Workload("wheel", {"rim": 4},
             timings=("uniform", "jittered", "stragglers", "straggler-pair")),
    Workload("power-law", {"n": 8},
             timings=("uniform", "stragglers"),
             scenario_kwargs={"exact_limit": 10}),
    Workload("cycle", {"n": 4}, engines=("single-leader", "2pc"),
             timings=("uniform", "jittered", "stragglers")),
    # Appended after the originals so their run keys never shift: the
    # adaptive-vs-static head-to-head at the same violation budget,
    # over the topology where the gap is starkest (clique, v=2).
    Workload("clique", {"n": 4},
             timings=("stragglers-tight", "adaptive-stragglers-tight")),
    Workload("cycle", {"n": 5},
             timings=("stragglers-tight", "adaptive-stragglers-tight")),
)

register_preset(
    "impossibility",
    Workload("two-coalition", {"left": [2, 3], "right": 2},
             mixes=("all-conforming", "free-ride")),
    Workload("chain", {"n": [3, 5]}),
)

register_preset(
    "scale",
    Workload("erdos-renyi", {"n": [10, 15, 20], "p": 0.1},
             scenario_kwargs={"exact_limit": 12}),
    Workload("clique", {"n": [6, 8]}, scenario_kwargs={"exact_limit": 8}),
)
