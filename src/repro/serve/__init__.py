"""`repro.serve`: the long-lived swap service.

PR 5 turned runs into observable processes (``Engine.open()`` →
:class:`~repro.api.execution.Execution` with typed milestones); this
package serves them.  A pure-stdlib asyncio daemon accepts scenario
submissions over HTTP (the ``Scenario.to_dict`` wire format), admits
them through per-client token buckets and a bounded queue
(429 + ``Retry-After`` backpressure), multiplexes N concurrent
execution sessions over a worker pool, and streams each session's
milestone events to WebSocket / NDJSON / long-poll subscribers as they
fire.  The content-addressed run store doubles as a warm cache:
resubmitting a seen scenario answers instantly with the stored report —
zero engines executed — and identical in-flight submissions coalesce
onto one execution.

Layering (each importable without the ones above it):

* :mod:`repro.serve.events` — the milestone/event JSON wire schema;
* :mod:`repro.serve.service` — :class:`SwapService`, the
  transport-agnostic core (admission, pool, cache, metrics);
* :mod:`repro.serve.http` — the HTTP/1.1 + WebSocket transport and the
  ``python -m repro serve`` entry point;
* :mod:`repro.serve.client` — blocking stdlib client, background-daemon
  harness, and the E27 load generator (``python -m repro serve-bench``).

Quickstart::

    $ python -m repro serve --port 8642 --store swaps.sqlite &
    $ curl -s -XPOST localhost:8642/v1/runs -d \\
        '{"engine": "herlihy", "scenario": {"topology": {...}, "seed": 7}}'
    {"key": "3fa0...", "queue_depth": 1, "status": "accepted"}
    $ curl -s localhost:8642/v1/runs/3fa0.../events   # NDJSON milestones
    $ curl -s -XPOST ...   # same body again: {"status": "cached", ...}
"""

from repro.serve.events import (
    EVENT_KINDS,
    TERMINAL_EVENTS,
    WIRE_SCHEMA,
    check_envelope,
    envelope,
    milestone_from_wire,
    milestone_to_wire,
)
from repro.serve.service import (
    Job,
    ServiceConfig,
    SubmitResult,
    SwapService,
    TokenBucket,
)

__all__ = [
    "EVENT_KINDS",
    "TERMINAL_EVENTS",
    "WIRE_SCHEMA",
    "check_envelope",
    "envelope",
    "milestone_from_wire",
    "milestone_to_wire",
    "Job",
    "ServiceConfig",
    "SubmitResult",
    "SwapService",
    "TokenBucket",
]
