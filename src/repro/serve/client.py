"""A blocking stdlib client for the swap service, plus the load generator.

:class:`ServeClient` wraps ``http.client`` — submit scenarios, long-poll
job status, stream NDJSON milestone events (validated against the wire
schema on receipt), read metrics, request aborts.  It is what the
``serve-bench`` CLI, benchmark E27, and CI drive the daemon with; being
pure stdlib it doubles as executable documentation of the wire format.

:class:`BackgroundServer` runs a full daemon (service + HTTP transport)
on a private event loop in a background thread — the harness tests,
benchmarks, and the load generator use it to exercise the real TCP
surface in-process.

:func:`run_load` is the measurement core of bench E27: ``clients``
threads submit distinct scenarios as fast as admission control lets
them (429s are honoured by sleeping ``Retry-After``), long-poll each to
settlement, and report sustained scenarios/sec plus submit-to-settled
latency percentiles.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ServeError
from repro.serve.events import check_envelope


class ServeClient:
    """Blocking HTTP client for one ``repro serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        client_id: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _connect(self, timeout: float | None = None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        return headers

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, dict[str, str], Any]:
        """One request/response cycle; returns (status, headers, json)."""
        conn = self._connect()
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body, headers=self._headers())
            response = conn.getresponse()
            raw = response.read()
            doc = json.loads(raw) if raw else None
            return response.status, dict(response.getheaders()), doc
        finally:
            conn.close()

    # -- the service surface -------------------------------------------------

    def submit(
        self, scenario: Mapping[str, Any], engine: str | None = None
    ) -> tuple[int, dict]:
        """Submit one scenario dict; returns (http status, response doc).

        200 = warm-cache hit (the doc carries the stored report),
        202 = accepted/coalesced, 429 = backpressure (``retry_after``)."""
        payload: dict[str, Any] = {"scenario": dict(scenario)}
        if engine is not None:
            payload["engine"] = engine
        status, _, doc = self.request("POST", "/v1/runs", payload)
        return status, doc

    def get(self, key: str, wait: float | None = None) -> dict:
        path = f"/v1/runs/{key}"
        if wait is not None:
            path += f"?wait={wait}"
        status, _, doc = self.request("GET", path)
        if status == 404:
            raise ServeError(doc.get("message", f"no such job: {key}"))
        return doc

    def wait_settled(self, key: str, timeout: float = 60.0) -> dict:
        """Long-poll until the job is terminal; raises on deadline."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(f"job {key[:12]} not terminal after {timeout}s")
            doc = self.get(key, wait=min(remaining, 10.0))
            if doc["status"] in ("settled", "failed", "aborted"):
                return doc

    def events(self, key: str, from_seq: int = 0) -> Iterator[dict]:
        """Stream the job's envelope events (schema-validated NDJSON)."""
        conn = self._connect()
        try:
            conn.request(
                "GET",
                f"/v1/runs/{key}/events?from={from_seq}",
                headers=self._headers(),
            )
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(
                    f"event stream for {key[:12]} answered {response.status}"
                )
            for raw in response:  # http.client undoes the chunking
                line = raw.strip()
                if line:
                    yield check_envelope(json.loads(line))
        finally:
            conn.close()

    def abort(self, key: str) -> dict:
        _, _, doc = self.request("DELETE", f"/v1/runs/{key}")
        return doc

    def status(self) -> dict:
        _, _, doc = self.request("GET", "/v1/status")
        return doc

    def healthy(self) -> bool:
        try:
            status, _, doc = self.request("GET", "/v1/healthz")
        except OSError:
            return False
        return status == 200 and bool(doc and doc.get("ok"))


class BackgroundServer:
    """A live daemon on a background thread (tests, benches, serve-bench).

    Context-manager: entering starts the event loop, service, and TCP
    listener (``port=0`` picks a free port, readable afterwards as
    ``.port``); exiting evicts live jobs and joins the loop thread.
    """

    def __init__(self, service=None, host: str = "127.0.0.1", port: int = 0) -> None:
        from repro.serve.http import ServeHTTP
        from repro.serve.service import SwapService

        self.server = ServeHTTP(service or SwapService(), host=host, port=port)
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._loop = None
        self._stop_event = None
        self._thread: threading.Thread | None = None

    async def _main(self) -> None:
        import asyncio

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # surface bind failures to the caller
            self._failure = error
            self._ready.set()
            raise
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.stop()

    def start(self) -> "BackgroundServer":
        import asyncio

        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-bg",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise ServeError("background server did not come up within 15s")
        if self._failure is not None:
            raise ServeError(f"background server failed to start: {self._failure}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=15)

    def client(self, client_id: str | None = None) -> ServeClient:
        return ServeClient(self.host, self.port, client_id=client_id)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def sample_scenarios(
    count: int, base_seed: int = 7, family: str = "triangle"
) -> list[dict]:
    """``count`` distinct submission payloads (seed-varied, cache-cold).

    Shared by ``python -m repro serve-bench`` and bench E27 so the CLI
    and the recorded artifact measure the same workload.
    """
    from repro.api.scenario import Scenario
    from repro.digraph.generators import cycle_digraph, triangle

    scenarios = []
    for index in range(count):
        topology = triangle() if family == "triangle" else cycle_digraph(4)
        scenarios.append(
            Scenario(
                topology=topology,
                seed=base_seed + index,
                name=f"serve-load:{family}#{index}",
            ).to_dict()
        )
    return scenarios


# -- the load generator -------------------------------------------------------


def run_load(
    host: str,
    port: int,
    scenarios: Sequence[Mapping[str, Any]],
    engine: str | None = None,
    clients: int = 4,
    wait_timeout: float = 60.0,
) -> dict[str, Any]:
    """Blast ``scenarios`` at a daemon and measure the service envelope.

    ``clients`` worker threads drain one shared work list; each submits
    (sleeping out any 429 ``Retry-After``), long-polls its job to a
    terminal state, and records the submit-to-settled wall latency.
    Returns sustained scenarios/sec, latency percentiles, and the
    daemon's own ``/v1/status`` counters afterwards.
    """
    work: list[tuple[int, Mapping[str, Any]]] = list(enumerate(scenarios))
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes = {"settled": 0, "failed": 0, "aborted": 0, "cached": 0}
    retries = 0
    errors: list[str] = []

    def worker(worker_id: int) -> None:
        nonlocal retries
        client = ServeClient(host, port, client_id=f"load-{worker_id}")
        while True:
            with lock:
                if not work:
                    return
                _, scenario = work.pop()
            begin = time.monotonic()
            while True:
                status, doc = client.submit(scenario, engine=engine)
                if status == 429:
                    with lock:
                        retries += 1
                    time.sleep(min(float(doc.get("retry_after", 0.5)), 2.0))
                    continue
                break
            if status not in (200, 202):
                with lock:
                    errors.append(f"submit answered {status}: {doc}")
                return
            if status == 200:  # warm hit: settled without executing
                with lock:
                    outcomes["cached"] += 1
                    latencies.append(time.monotonic() - begin)
                continue
            final = client.wait_settled(doc["key"], timeout=wait_timeout)
            with lock:
                latencies.append(time.monotonic() - begin)
                outcomes[final["status"]] = outcomes.get(final["status"], 0) + 1

    started = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(i,), name=f"load-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    if errors:
        raise ServeError("; ".join(errors[:3]))

    latencies.sort()

    def pct(q: float) -> float | None:
        if not latencies:
            return None
        rank = max(0, min(len(latencies) - 1, round(q * len(latencies)) - 1))
        return latencies[rank]

    daemon = ServeClient(host, port).status()
    completed = sum(outcomes.values())
    return {
        "scenarios": len(scenarios),
        "clients": clients,
        "wall_seconds": wall,
        "throughput_per_sec": completed / wall if wall > 0 else 0.0,
        "outcomes": outcomes,
        "latency_seconds": {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "p50": pct(0.50),
            "p99": pct(0.99),
        },
        "rate_limit_retries": retries,
        "daemon": {
            key: daemon.get(key)
            for key in (
                "submitted",
                "accepted",
                "coalesced",
                "cache_hits",
                "cache_hit_rate",
                "executed",
                "failed",
                "aborted",
                "rejected_queue_full",
                "rejected_rate_limited",
                "milestones",
            )
        },
    }
