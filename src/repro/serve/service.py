"""`SwapService`: the daemon's transport-agnostic core.

The service turns the execution-session API into a long-lived,
admission-controlled server: submissions arrive as ``(engine, scenario)``
pairs, pass a per-client token bucket and a bounded admission queue, and
are multiplexed over a pool of worker slots that each drive one
:class:`~repro.api.execution.Execution` event-by-event — milestones are
forwarded to subscribers *as they fire*, not after quiescence.

Everything observable about a job is an ordered stream of envelope
events (:mod:`repro.serve.events`): ``accepted`` → ``started`` →
``milestone``* → ``settled`` | ``failed`` | ``aborted``.  Subscribers
replay a job's stream from any sequence number and then follow it live,
which is what both the long-poll and WebSocket transports in
:mod:`repro.serve.http` are built on.

The content-addressed run store doubles as the warm cache: submissions
are keyed by :func:`repro.api.sweep.run_key`, a seen scenario returns
the stored entry instantly (zero engines executed), and duplicate
in-flight submissions coalesce onto the single live execution.  With
``ServiceConfig.fast_path`` on, a *fully-covered* scenario
(:mod:`repro.analysis.engine`) is settled from the closed-form
synthesizer on the submit path itself — a third tier between the warm
hit and the cold run that never occupies an execution slot.  Settled
and failed runs are recorded in exactly the ``run_sweep`` entry format,
so a store warmed by the daemon warms ``lab`` sweeps and vice versa.
Aborted runs are *never* recorded — a partial report must not poison
the cache.

Concurrency model: the service lives on one asyncio event loop; engine
stepping happens in a thread pool (one slot per concurrent session) and
milestones hop back to the loop via ``call_soon_threadsafe``.  All
store access stays on the loop thread.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Mapping

from repro.api.engine import get_engine
from repro.api.scenario import Scenario
from repro.api.sweep import run_key
from repro.errors import AdmissionError, ReproError, ServeError, WireError
from repro.lab.store import MemoryStore, RunStore
from repro.serve.events import TERMINAL_EVENTS, WIRE_SCHEMA, envelope, milestone_to_wire

#: Job lifecycle states; the last three are terminal.
JOB_STATES = ("queued", "running", "settled", "failed", "aborted")
TERMINAL_STATES = frozenset({"settled", "failed", "aborted"})


@dataclass
class ServiceConfig:
    """Tunables for one :class:`SwapService` instance."""

    max_pending: int = 64
    """Admission-queue depth; a submission beyond it gets a 429."""
    max_concurrency: int = 4
    """Execution sessions driven simultaneously (worker slots)."""
    rate: float = 50.0
    """Per-client token-bucket refill, submissions/second (<= 0 disables)."""
    burst: float = 100.0
    """Per-client bucket capacity (the allowed submission burst)."""
    max_run_seconds: float | None = 30.0
    """Wall-clock eviction deadline per job; ``None`` disables."""
    max_events_per_job: int = 4096
    """Milestone events retained per job; beyond it they are dropped
    (counted in ``dropped_events``) — terminal events always land."""
    max_jobs_retained: int = 1024
    """Terminal jobs kept for late subscribers before eviction."""
    default_engine: str = "herlihy"
    latency_window: int = 4096
    """Settled-latency samples kept for the p50/p99 metrics."""
    fast_path: bool = False
    """Answer fully-covered submissions from the closed-form analytic
    synthesizer (:mod:`repro.analysis.engine`) without occupying an
    execution slot — a third tier between the warm-cache hit and the
    cold run.  The synthesized report is byte-identical to what the
    simulator would produce and is stored under the same run key, so
    the cache stays coherent across both paths."""


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/sec, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def try_take(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds until
        the next token accrues."""
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class Job:
    """One submitted run and its observable event stream."""

    key: str
    engine: str
    scenario: Scenario
    client: str
    submitted_at: float
    status: str = "queued"
    cached: bool = False
    events: list[dict] = field(default_factory=list)
    entry: dict | None = None
    started_at: float | None = None
    settled_at: float | None = None
    subscribers: int = 0
    coalesced: int = 0
    dropped_events: int = 0
    abort_requested: bool = False
    abort_reason: str = ""
    waker: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def state(self) -> dict[str, Any]:
        """The job's status document (what ``GET /v1/runs/<key>`` serves)."""
        doc: dict[str, Any] = {
            "key": self.key,
            "engine": self.engine,
            "scenario": self.scenario.label(),
            "status": self.status,
            "cached": self.cached,
            "events": len(self.events),
            "coalesced": self.coalesced,
        }
        if self.dropped_events:
            doc["dropped_events"] = self.dropped_events
        if self.entry is not None:
            if self.entry.get("ok"):
                doc["report"] = self.entry["report"]
            elif self.entry.get("aborted"):
                doc["aborted"] = self.entry["aborted"]
                if "report" in self.entry:
                    doc["report"] = self.entry["report"]
            else:
                doc["error_type"] = self.entry.get("error_type")
                doc["message"] = self.entry.get("message")
        return doc


@dataclass(frozen=True)
class SubmitResult:
    """What :meth:`SwapService.submit` answers.

    ``status`` is ``"cached"`` (served instantly from the store, zero
    engines executed), ``"coalesced"`` (an identical submission is
    already queued or running — the caller shares its job),
    ``"analytic"`` (fully covered: settled from the closed-form
    synthesizer without an execution slot), or ``"accepted"`` (freshly
    admitted).
    """

    status: str
    key: str
    job: Job
    queue_depth: int = 0


class SwapService:
    """The admission-controlled, multiplexing execution service."""

    def __init__(
        self, config: ServiceConfig | None = None, store: RunStore | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store if store is not None else MemoryStore()
        self._jobs: dict[str, Job] = {}
        self._terminal_order: deque[str] = deque()
        self._buckets: dict[str, TokenBucket] = {}
        self._latencies: deque[float] = deque(maxlen=self.config.latency_window)
        self._milestone_counts: dict[str, int] = {}
        self._queue: asyncio.Queue[Job] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at: float | None = None
        self._counters = {
            "submitted": 0,
            "accepted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "analytic": 0,
            "rejected_queue_full": 0,
            "rejected_rate_limited": 0,
            "executed": 0,
            "settled": 0,
            "failed": 0,
            "aborted": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring up the worker pool; must run on the serving loop."""
        if self._queue is not None:
            raise ServeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        self._workers = [
            self._loop.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.config.max_concurrency)
        ]
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Evict every live job, drain the pool, flush the store."""
        if self._queue is None:
            return
        for job in self._jobs.values():
            if not job.terminal:
                job.abort_requested = True
                job.abort_reason = job.abort_reason or "service shutdown"
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            # In-flight drive threads notice abort_requested between
            # steps and finish promptly; join them before flushing.
            await asyncio.get_running_loop().run_in_executor(
                None, self._executor.shutdown
            )
            self._executor = None
        self._queue = None
        flush = getattr(self.store, "flush", None)
        if flush is not None:
            flush()

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        scenario: Scenario | Mapping[str, Any],
        engine: str | None = None,
        client: str = "anonymous",
    ) -> SubmitResult:
        """Admit one scenario; returns how it was disposed of.

        Raises :class:`~repro.errors.AdmissionError` on rate limiting or
        a full queue, and other :class:`~repro.errors.ReproError`
        subclasses (unknown engine, malformed scenario) for bad input.
        """
        if self._queue is None:
            raise ServeError("service is not started")
        self._counters["submitted"] += 1
        engine_name = engine or self.config.default_engine
        get_engine(engine_name)  # fail fast on typos
        if not isinstance(scenario, Scenario):
            try:
                scenario = Scenario.from_dict(dict(scenario))
            except ReproError:
                raise
            except Exception as error:
                raise WireError(f"malformed scenario payload: {error}") from error

        now = time.monotonic()
        if self.config.rate > 0:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.config.rate, self.config.burst, now
                )
            wait = bucket.try_take(now)
            if wait > 0.0:
                self._counters["rejected_rate_limited"] += 1
                raise AdmissionError("rate-limited", wait, f"client {client!r}")

        key = run_key(engine_name, scenario)

        # In-flight (or retained) job first: coalesce onto it.
        live = self._jobs.get(key)
        if live is not None and not live.terminal:
            live.coalesced += 1
            self._counters["coalesced"] += 1
            return SubmitResult("coalesced", key, live, self._queue.qsize())
        if live is not None and live.terminal:
            # A retained terminal job is the cache in memory.
            self._counters["cache_hits"] += 1
            return SubmitResult("cached", key, live, self._queue.qsize())

        # Warm cache: a stored entry settles the submission instantly.
        stored = self.store.get(key)
        if stored is not None:
            self._counters["cache_hits"] += 1
            job = self._cached_job(key, engine_name, scenario, client, stored, now)
            return SubmitResult("cached", key, job, self._queue.qsize())

        # Analytic tier: a fully-covered scenario is answered from the
        # closed-form synthesizer on the submit path itself — no queue
        # slot, no worker, no engine.  The entry lands in the store, so
        # every later submission of this key is a plain cache hit.
        if self.config.fast_path:
            from repro.analysis.engine import analyze_for_fast_path, fast_path_eligible

            analysis = analyze_for_fast_path(scenario, engine_name)
            if analysis is not None and fast_path_eligible(analysis):
                self._counters["analytic"] += 1
                job = self._analytic_job(
                    key, engine_name, scenario, client, analysis, now
                )
                return SubmitResult("analytic", key, job, self._queue.qsize())

        if self._queue.full():
            self._counters["rejected_queue_full"] += 1
            retry = self._retry_after()
            raise AdmissionError(
                "queue-full", retry, f"admission queue holds {self._queue.qsize()}"
            )

        job = Job(
            key=key,
            engine=engine_name,
            scenario=scenario,
            client=client,
            submitted_at=now,
        )
        self._jobs[key] = job
        self._publish(job, "accepted", {"engine": engine_name, "client": client})
        self._queue.put_nowait(job)
        self._counters["accepted"] += 1
        return SubmitResult("accepted", key, job, self._queue.qsize())

    def _cached_job(
        self,
        key: str,
        engine: str,
        scenario: Scenario,
        client: str,
        stored: dict,
        now: float,
    ) -> Job:
        """Materialise a warm hit as an already-terminal job so cache
        and fresh submissions expose one subscription surface."""
        job = Job(
            key=key,
            engine=engine,
            scenario=scenario,
            client=client,
            submitted_at=now,
            cached=True,
        )
        job.entry = stored
        self._publish(job, "accepted", {"engine": engine, "cached": True})
        if stored.get("ok"):
            job.status = "settled"
            job.settled_at = now
            self._publish(
                job, "settled", {"cached": True, "report": stored["report"]}
            )
        else:
            job.status = "failed"
            job.settled_at = now
            self._publish(
                job,
                "failed",
                {
                    "cached": True,
                    "error_type": stored.get("error_type"),
                    "message": stored.get("message"),
                },
            )
        self._remember(job)
        return job

    def _analytic_job(
        self,
        key: str,
        engine: str,
        scenario: Scenario,
        client: str,
        analysis: Any,
        now: float,
    ) -> Job:
        """Settle a fully-covered submission from the closed-form path.

        The synthesized report is stored in the standard entry format
        (stamped ``extra["path"] = "analytic"``), so the run key answers
        as a warm hit everywhere — ``lab`` sweeps included."""
        from repro.analysis.engine import PATH_ANALYTIC, PATH_KEY, synthesize_report

        begun = time.perf_counter()
        report = synthesize_report(scenario, analysis.prediction)
        report.wall_seconds = time.perf_counter() - begun
        report.extra[PATH_KEY] = PATH_ANALYTIC
        entry: dict[str, Any] = {"ok": True, "report": report.to_dict()}
        counts = report.milestone_counts()
        if counts:
            entry["milestones"] = counts
        self.store.put(key, entry)
        self._flush_store()
        job = Job(
            key=key,
            engine=engine,
            scenario=scenario,
            client=client,
            submitted_at=now,
        )
        job.entry = entry
        self._publish(job, "accepted", {"engine": engine, "analytic": True})
        job.status = "settled"
        job.settled_at = now
        self._publish(
            job, "settled", {"cached": False, "analytic": True, "report": entry["report"]}
        )
        self._remember(job)
        return job

    def _retry_after(self) -> float:
        """Advisory back-off when the queue is full: the mean observed
        service latency per queued job, floored at half a second."""
        if self._latencies:
            mean = sum(self._latencies) / len(self._latencies)
        else:
            mean = 0.5
        return max(0.5, mean)

    def _remember(self, job: Job) -> None:
        """Track a terminal job, evicting the oldest beyond the cap."""
        self._jobs[job.key] = job
        self._terminal_order.append(job.key)
        while len(self._terminal_order) > self.config.max_jobs_retained:
            victim = self._terminal_order.popleft()
            held = self._jobs.get(victim)
            if held is not None and held.terminal and held.subscribers == 0:
                del self._jobs[victim]

    # -- the execution pool --------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None and self._executor is not None
        if job.abort_requested:
            # Evicted while still queued: never reached an engine.
            job.status = "aborted"
            job.settled_at = time.monotonic()
            self._counters["aborted"] += 1
            self._publish(job, "aborted", {"reason": job.abort_reason or "evicted"})
            self._remember(job)
            return
        job.status = "running"
        job.started_at = time.monotonic()
        self._publish(job, "started", {"engine": job.engine})
        try:
            entry, outcome = await self._loop.run_in_executor(
                self._executor, self._drive, job, self._loop
            )
        except Exception as error:  # engine bug: report, don't kill the pool
            entry = {
                "ok": False,
                "engine": job.engine,
                "scenario": job.scenario.to_dict(),
                "error_type": type(error).__name__,
                "message": str(error),
            }
            outcome = "failed"
        job.entry = entry
        job.status = outcome
        job.settled_at = time.monotonic()
        self._counters[outcome] += 1
        if outcome == "settled":
            self._counters["executed"] += 1
            self._latencies.append(job.settled_at - job.submitted_at)
            self.store.put(job.key, entry)
            self._flush_store()
            self._publish(job, "settled", {"cached": False, "report": entry["report"]})
        elif outcome == "failed":
            # Failures are cacheable knowledge, exactly as in run_sweep.
            self._counters["executed"] += 1
            self.store.put(job.key, entry)
            self._flush_store()
            self._publish(
                job,
                "failed",
                {
                    "cached": False,
                    "error_type": entry.get("error_type"),
                    "message": entry.get("message"),
                },
            )
        else:  # aborted: never stored — a partial report would poison the cache
            self._publish(job, "aborted", {"reason": job.abort_reason or "evicted"})
        self._remember(job)

    def _flush_store(self) -> None:
        """Make the just-recorded run crash-durable (the per-chunk
        discipline ``run_sweep`` uses, applied per settled job)."""
        flush = getattr(self.store, "flush", None)
        if flush is not None:
            flush()

    def _drive(self, job: Job, loop: asyncio.AbstractEventLoop) -> tuple[dict, str]:
        """Thread-side: step one execution, forwarding milestones live.

        Returns the store-format entry dict plus the job outcome.  Runs
        entirely off the event loop; every milestone hops back via
        ``call_soon_threadsafe``.
        """
        execution = get_engine(job.engine).open(job.scenario)
        deadline = (
            None
            if self.config.max_run_seconds is None
            else time.monotonic() + self.config.max_run_seconds
        )
        try:
            while True:
                if job.abort_requested or (
                    deadline is not None and time.monotonic() > deadline
                ):
                    reason = job.abort_reason or "deadline exceeded"
                    job.abort_reason = reason
                    report = execution.abort(reason)
                    # The partial report is observable on the job but is
                    # never stored: ok=False keeps it out of report paths.
                    return (
                        {"ok": False, "aborted": reason, "report": report.to_dict()},
                        "aborted",
                    )
                fresh = execution.step()
                for milestone in fresh or ():
                    wire = milestone_to_wire(milestone)
                    loop.call_soon_threadsafe(self._publish_milestone, job, wire)
                if execution.quiesced:
                    report = execution.run_to_completion()
                    entry: dict[str, Any] = {"ok": True, "report": report.to_dict()}
                    counts = report.milestone_counts()
                    if counts:
                        entry["milestones"] = counts
                    return entry, "settled"
        except ReproError as error:
            return (
                {
                    "ok": False,
                    "engine": job.engine,
                    "scenario": job.scenario.to_dict(),
                    "error_type": type(error).__name__,
                    "message": str(error),
                },
                "failed",
            )

    # -- the event stream ----------------------------------------------------

    def _publish(self, job: Job, event: str, data: Mapping[str, Any] | None) -> None:
        job.events.append(envelope(len(job.events), event, job.key, data))
        waker, job.waker = job.waker, asyncio.Event()
        waker.set()

    def _publish_milestone(self, job: Job, wire: dict) -> None:
        kind = wire["kind"]
        self._milestone_counts[kind] = self._milestone_counts.get(kind, 0) + 1
        if len(job.events) >= self.config.max_events_per_job:
            job.dropped_events += 1
            return
        self._publish(job, "milestone", wire)

    def job(self, key: str) -> Job:
        """The live or retained job for ``key``; raises if unknown."""
        try:
            return self._jobs[key]
        except KeyError:
            raise ServeError(f"no such job: {key}") from None

    def abort(self, key: str, reason: str = "client abort") -> bool:
        """Request eviction of a queued or running job.

        Returns ``False`` when the job is already terminal (nothing to
        do); the abort itself lands asynchronously — subscribers see the
        terminal ``aborted`` event when the worker honours it.
        """
        job = self.job(key)
        if job.terminal:
            return False
        job.abort_requested = True
        job.abort_reason = reason
        return True

    async def subscribe(
        self, key: str, from_seq: int = 0
    ) -> AsyncIterator[dict]:
        """Replay a job's events from ``from_seq``, then follow live.

        Yields envelope dicts; returns after yielding a terminal event
        (``settled`` / ``failed`` / ``aborted``).
        """
        job = self.job(key)
        job.subscribers += 1
        seq = max(0, from_seq)
        try:
            while True:
                waker = job.waker
                while seq < len(job.events):
                    event = job.events[seq]
                    seq += 1
                    yield event
                    if event["event"] in TERMINAL_EVENTS:
                        return
                if job.terminal:
                    # Terminal event already consumed by an earlier
                    # from_seq window, or dropped: stop following.
                    return
                await waker.wait()
        finally:
            job.subscribers -= 1

    async def wait(self, key: str, timeout: float | None = None) -> Job:
        """Block until ``key``'s job is terminal (long-poll primitive)."""
        job = self.job(key)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not job.terminal:
            waker = job.waker
            if deadline is None:
                await waker.wait()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(waker.wait(), remaining)
                except asyncio.TimeoutError:
                    break
        return job

    # -- metrics -------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """The metrics document (``GET /v1/status``)."""
        by_status: dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        latencies = sorted(self._latencies)
        in_flight = sum(
            1 for job in self._jobs.values() if job.status == "running"
        )
        total = self._counters["submitted"]
        hits = self._counters["cache_hits"]
        doc: dict[str, Any] = {
            "schema": WIRE_SCHEMA,
            "uptime_seconds": (
                0.0
                if self._started_at is None
                else time.monotonic() - self._started_at
            ),
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
            "in_flight": in_flight,
            "jobs": by_status,
            "cache_hit_rate": (hits / total) if total else 0.0,
            "milestones": dict(self._milestone_counts),
            "latency": {
                "count": len(latencies),
                "mean_ms": (
                    sum(latencies) / len(latencies) * 1000 if latencies else None
                ),
                "p50_ms": _percentile(latencies, 0.50),
                "p99_ms": _percentile(latencies, 0.99),
            },
            "store_entries": len(self.store),
        }
        doc.update(self._counters)
        return doc


def _percentile(sorted_seconds: list[float], q: float) -> float | None:
    """Nearest-rank percentile of pre-sorted samples, in milliseconds."""
    if not sorted_seconds:
        return None
    rank = max(0, min(len(sorted_seconds) - 1, round(q * len(sorted_seconds)) - 1))
    return sorted_seconds[rank] * 1000
