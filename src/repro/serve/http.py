"""The daemon's wire transport: stdlib-asyncio HTTP/1.1 + WebSocket.

No third-party web framework — the container bakes in only the standard
library, so this module speaks just enough HTTP/1.1 (request-line,
headers, content-length bodies, chunked responses, keep-alive) and just
enough RFC 6455 (handshake, server→client text frames, close/ping) to
serve the :class:`~repro.serve.service.SwapService` surface:

====================================  =====================================
``POST /v1/runs``                     submit ``{"engine", "scenario"}``;
                                      200 warm-cache hit with the stored
                                      report, 202 accepted/coalesced,
                                      429 + ``Retry-After`` on backpressure
``GET /v1/runs/<key>``                job status; ``?wait=S`` long-polls
                                      until terminal or the deadline
``GET /v1/runs/<key>/events``         NDJSON stream of envelope events
                                      from ``?from=N``, live until the
                                      job's terminal event
``GET /v1/runs/<key>/ws``             the same stream over WebSocket
``DELETE /v1/runs/<key>``             request eviction (Execution.abort)
``GET /v1/status``                    queue/cache/latency/milestone metrics
``GET /v1/healthz``                   liveness probe
====================================  =====================================

Every error is JSON (``{"error", "message"}``); admission rejections map
to 429 with ``Retry-After``, schema violations to 400, unknown jobs to
404 — the service's exception taxonomy is the routing table.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import hashlib
import json
import struct
from typing import Any, Awaitable, Callable, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    AdmissionError,
    ReproError,
    ServeError,
    WireError,
)
from repro.lab.store import open_store
from repro.serve.service import ServiceConfig, SwapService

#: RFC 6455 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_MAX_BODY = 4 * 1024 * 1024
_MAX_HEADER_LINES = 100


class HttpError(ServeError):
    """An error with a definite HTTP status."""

    def __init__(self, status: int, message: str, headers: dict | None = None) -> None:
        self.status = status
        self.headers = headers or {}
        super().__init__(message)


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        peer: str,
    ) -> None:
        self.method = method
        split = urlsplit(target)
        self.path = split.path
        self.query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        self.headers = headers
        self.body = body
        self.peer = peer

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")

    @property
    def client(self) -> str:
        """Rate-limit identity: explicit header first, else peer IP."""
        return self.headers.get("x-repro-client") or self.peer


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServeHTTP:
    """Binds a :class:`SwapService` to an asyncio TCP server."""

    def __init__(
        self,
        service: SwapService,
        host: str = "127.0.0.1",
        port: int = 8642,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "unknown"
        try:
            while True:
                request = await self._read_request(reader, peer)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # never take the daemon down with a request
            try:
                _json_response(
                    writer,
                    500,
                    {"error": "internal", "message": f"{type(error).__name__}: {error}"},
                )
            except Exception:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, peer: str
    ) -> Request | None:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            return None
        if length:
            body = await reader.readexactly(length)
        return Request(method.upper(), target, headers, body, peer)

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        try:
            if request.path == "/v1/runs" and request.method == "POST":
                return self._post_run(request, writer)
            if request.path == "/v1/status" and request.method == "GET":
                _json_response(writer, 200, self.service.status())
                return True
            if request.path == "/v1/healthz" and request.method == "GET":
                _json_response(writer, 200, {"ok": True})
                return True
            if request.path.startswith("/v1/runs/"):
                return await self._run_routes(request, reader, writer)
            raise HttpError(404, f"no route for {request.method} {request.path}")
        except HttpError as error:
            _json_response(
                writer,
                error.status,
                {"error": _STATUS_TEXT.get(error.status, "error"),
                 "message": str(error)},
                extra_headers=error.headers,
            )
            return error.status < 500
        except AdmissionError as error:
            _json_response(
                writer,
                429,
                {
                    "error": "rejected",
                    "reason": error.reason,
                    "message": str(error),
                    "retry_after": error.retry_after,
                },
                extra_headers={"Retry-After": f"{error.retry_after:.2f}"},
            )
            return True
        except WireError as error:
            _json_response(writer, 400, {"error": "bad-request", "message": str(error)})
            return True
        except ReproError as error:
            _json_response(
                writer,
                400,
                {
                    "error": "bad-request",
                    "error_type": type(error).__name__,
                    "message": str(error),
                },
            )
            return True

    def _post_run(self, request: Request, writer: asyncio.StreamWriter) -> bool:
        payload = request.json()
        if not isinstance(payload, dict) or "scenario" not in payload:
            raise HttpError(
                400, 'submission body must be {"engine"?: str, "scenario": {...}}'
            )
        # Pre-admission gate: statically verify the submission before it
        # can claim an execution slot.  Structural defects come back as a
        # 400 with one machine-readable diagnostic (code + JSON path) per
        # problem instead of a single opaque parse error.
        from repro.analysis.diagnostics import has_errors
        from repro.analysis.protocol import check_submission

        diagnostics = check_submission(
            payload["scenario"],
            engine=payload.get("engine") or self.service.config.default_engine,
        )
        if has_errors(diagnostics):
            _json_response(
                writer,
                400,
                {
                    "error": "invalid-scenario",
                    "message": "submission failed static verification",
                    "diagnostics": [
                        d.to_dict() for d in diagnostics
                    ],
                },
            )
            return True
        result = self.service.submit(
            payload["scenario"],
            engine=payload.get("engine"),
            client=request.client,
        )
        doc = {
            "status": result.status,
            "key": result.key,
            "queue_depth": result.queue_depth,
        }
        if result.status == "cached":
            doc.update(result.job.state())
            doc["status"] = "cached"  # job.state() says settled/failed
            doc["engines_executed"] = 0
            _json_response(writer, 200, doc)
        else:
            _json_response(writer, 202, doc)
        return True

    async def _run_routes(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        rest = request.path[len("/v1/runs/"):]
        key, _, tail = rest.partition("/")
        if not key:
            raise HttpError(404, "missing run key")
        try:
            job = self.service.job(key)
        except ServeError as error:
            raise HttpError(404, str(error)) from None

        if not tail and request.method == "GET":
            wait = _float_query(request, "wait")
            if wait is not None and not job.terminal:
                job = await self.service.wait(key, timeout=wait)
            _json_response(writer, 200, job.state())
            return True
        if not tail and request.method == "DELETE":
            accepted = self.service.abort(
                key, reason=f"evicted by {request.client}"
            )
            _json_response(
                writer,
                202 if accepted else 200,
                {"key": key, "status": "aborting" if accepted else job.status},
            )
            return True
        if tail == "events" and request.method == "GET":
            await self._stream_events(request, key, writer)
            return False  # the stream owns (and ends) the connection
        if tail == "ws" and request.method == "GET":
            await self._stream_websocket(request, key, reader, writer)
            return False
        raise HttpError(405, f"no route for {request.method} {request.path}")

    # -- streaming subscribers -----------------------------------------------

    async def _stream_events(
        self, request: Request, key: str, writer: asyncio.StreamWriter
    ) -> None:
        """NDJSON over chunked transfer-encoding: one envelope per line,
        closed after the job's terminal event (long-poll in a loop =
        pass ``?from=`` of the last seen seq)."""
        from_seq = int(request.query.get("from", 0) or 0)
        _write_head(
            writer,
            200,
            {
                "Content-Type": "application/x-ndjson",
                "Transfer-Encoding": "chunked",
                "Cache-Control": "no-store",
            },
        )
        async for event in self.service.subscribe(key, from_seq):
            _write_chunk(writer, (json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()
        _write_chunk(writer, b"")
        await writer.drain()

    async def _stream_websocket(
        self,
        request: Request,
        key: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        ws_key = request.headers.get("sec-websocket-key")
        if (
            request.headers.get("upgrade", "").lower() != "websocket"
            or not ws_key
        ):
            raise HttpError(400, "expected a WebSocket upgrade request")
        accept = base64.b64encode(
            hashlib.sha1((ws_key + _WS_GUID).encode()).digest()
        ).decode()
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Upgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            + f"Sec-WebSocket-Accept: {accept}\r\n\r\n".encode()
        )
        await writer.drain()
        from_seq = int(request.query.get("from", 0) or 0)
        closer = asyncio.ensure_future(_ws_read_until_close(reader))
        try:
            async for event in self.service.subscribe(key, from_seq):
                if closer.done():
                    return  # client went away mid-stream
                writer.write(_ws_text_frame(json.dumps(event, sort_keys=True)))
                await writer.drain()
            writer.write(_ws_close_frame())
            await writer.drain()
        finally:
            closer.cancel()


# -- low-level writers --------------------------------------------------------


def _float_query(request: Request, name: str) -> float | None:
    raw = request.query.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name!r} must be a number, got {raw!r}")


def _write_head(
    writer: asyncio.StreamWriter, status: int, headers: dict[str, str]
) -> None:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))


def _write_chunk(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(f"{len(payload):x}\r\n".encode() + payload + b"\r\n")


def _json_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: dict | None = None,
) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
    }
    if extra_headers:
        headers.update({k: str(v) for k, v in extra_headers.items()})
    _write_head(writer, status, headers)
    writer.write(body)


# -- minimal RFC 6455 ---------------------------------------------------------


def _ws_text_frame(text: str) -> bytes:
    """One server→client text frame (FIN set, unmasked)."""
    payload = text.encode("utf-8")
    length = len(payload)
    if length < 126:
        head = struct.pack("!BB", 0x81, length)
    elif length < 1 << 16:
        head = struct.pack("!BBH", 0x81, 126, length)
    else:
        head = struct.pack("!BBQ", 0x81, 127, length)
    return head + payload


def _ws_close_frame() -> bytes:
    return struct.pack("!BBH", 0x88, 2, 1000)  # normal closure


async def _ws_read_until_close(reader: asyncio.StreamReader) -> None:
    """Drain client frames, returning when the client closes."""
    try:
        while True:
            head = await reader.readexactly(2)
            opcode = head[0] & 0x0F
            length = head[1] & 0x7F
            masked = bool(head[1] & 0x80)
            if length == 126:
                length = struct.unpack("!H", await reader.readexactly(2))[0]
            elif length == 127:
                length = struct.unpack("!Q", await reader.readexactly(8))[0]
            if masked:
                await reader.readexactly(4)
            if length:
                await reader.readexactly(length)
            if opcode == 0x8:  # close
                return
    except (asyncio.IncompleteReadError, ConnectionError):
        return


# -- the `python -m repro serve` entry point ---------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="the long-lived swap service: HTTP submissions, "
        "streaming milestone subscriptions, store-backed warm cache",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--store", default=":memory:",
                        help="run store path (warm cache); default in-memory")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="execution sessions driven simultaneously")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="admission queue bound (429 beyond it)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="per-client submissions/sec (0 disables)")
    parser.add_argument("--burst", type=float, default=100.0,
                        help="per-client burst capacity")
    parser.add_argument("--max-run-seconds", type=float, default=30.0,
                        help="evict a session running longer than this")
    parser.add_argument("--engine", default="herlihy",
                        help="default engine for submissions that omit one")
    parser.add_argument("--fast-path", action="store_true",
                        help="settle fully-covered submissions from the "
                             "closed-form analytic synthesizer without "
                             "occupying an execution slot")
    return parser


def make_service(args: argparse.Namespace) -> SwapService:
    config = ServiceConfig(
        max_pending=args.queue_depth,
        max_concurrency=args.concurrency,
        rate=args.rate,
        burst=args.burst,
        max_run_seconds=args.max_run_seconds,
        default_engine=args.engine,
        fast_path=args.fast_path,
    )
    return SwapService(config, store=open_store(args.store))


async def _amain(
    args: argparse.Namespace,
    ready: Callable[[ServeHTTP], Awaitable[None] | None] | None = None,
) -> int:
    server = ServeHTTP(make_service(args), host=args.host, port=args.port)
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"(store: {args.store}, concurrency {args.concurrency}, "
        f"queue {args.queue_depth}, rate {args.rate}/s)",
        flush=True,
    )
    if ready is not None:
        maybe = ready(server)
        if maybe is not None:
            await maybe
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("repro serve: shut down", flush=True)
        return 0
