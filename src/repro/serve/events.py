"""The service's JSON wire schema for milestone streams.

A :class:`~repro.sim.milestones.Milestone` crosses the wire as the plain
dict its ``to_dict`` produces (``index``, ``time``, ``kind``, ``party``,
``arc``), wrapped in a per-job event envelope::

    {"seq": 3, "event": "milestone", "job": "<run key>",
     "data": {"index": 1, "time": 4100, "kind": "contract-escrowed",
              "party": "Alice", "arc": ["Alice", "Bob"]}}

Envelope events cover the whole job lifecycle — ``accepted``,
``started``, ``milestone``, ``settled``, ``failed``, ``aborted`` — so a
subscriber that replays a job's stream from ``seq`` 0 reconstructs
everything that happened to it, in order.  ``settled`` carries the
serialized :class:`~repro.api.report.RunReport` (and whether it was
served from the warm cache).

Decoding is strict on both sides: :func:`milestone_from_wire` rejects an
unknown milestone kind, a non-integer index/time, or a malformed arc
with a :class:`~repro.errors.WireError` naming the offending field —
never a ``KeyError`` out of the daemon's request loop — and
:func:`milestone_to_wire` validates the kind on the way out, so a future
vocabulary drift is caught at the boundary, not by a remote client.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import WireError
from repro.sim.milestones import MILESTONE_KINDS, Milestone

#: Bump when the event envelope changes incompatibly.
WIRE_SCHEMA = 1

#: Every envelope event kind, in lifecycle order.
EVENT_KINDS: tuple[str, ...] = (
    "accepted",
    "started",
    "milestone",
    "settled",
    "failed",
    "aborted",
)

#: Envelope kinds after which a job's stream emits nothing further.
TERMINAL_EVENTS: frozenset[str] = frozenset({"settled", "failed", "aborted"})

#: The milestone vocabulary this wire schema covers.  Deliberately an
#: alias (not a copy) of the simulator's vocabulary: a milestone kind
#: added to :mod:`repro.sim.milestones` is on the wire the same release,
#: and the ``wire-schema`` lint rule plus ``tests/test_serve_events.py``
#: enforce that this stays an alias.
WIRE_MILESTONE_KINDS: tuple[str, ...] = MILESTONE_KINDS


def milestone_to_wire(milestone: Milestone) -> dict[str, Any]:
    """Encode one milestone for the wire, validating its kind."""
    if milestone.kind not in MILESTONE_KINDS:
        known = ", ".join(MILESTONE_KINDS)
        raise WireError(
            f"refusing to encode unknown milestone kind {milestone.kind!r}; "
            f"the vocabulary is: {known}"
        )
    return milestone.to_dict()


def milestone_from_wire(data: Mapping[str, Any]) -> Milestone:
    """Decode one milestone dict, rejecting anything off-schema."""
    if not isinstance(data, Mapping):
        raise WireError(f"milestone payload must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    if kind not in MILESTONE_KINDS:
        known = ", ".join(MILESTONE_KINDS)
        raise WireError(
            f"unknown milestone kind {kind!r}; the vocabulary is: {known}"
        )
    index, time = data.get("index"), data.get("time")
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        raise WireError(f"milestone index must be a non-negative integer, got {index!r}")
    if not isinstance(time, int) or isinstance(time, bool):
        raise WireError(f"milestone time must be an integer, got {time!r}")
    party = data.get("party")
    if party is not None and not isinstance(party, str):
        raise WireError(f"milestone party must be a string or null, got {party!r}")
    arc = data.get("arc")
    if arc is not None:
        if (
            not isinstance(arc, (list, tuple))
            or len(arc) != 2
            or not all(isinstance(end, str) for end in arc)
        ):
            raise WireError(
                f"milestone arc must be null or a [from, to] pair, got {arc!r}"
            )
        arc = (arc[0], arc[1])
    return Milestone(index=index, time=time, kind=kind, party=party, arc=arc)


def envelope(
    seq: int, event: str, job: str, data: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Build one stream-event envelope, validating the event kind."""
    if event not in EVENT_KINDS:
        known = ", ".join(EVENT_KINDS)
        raise WireError(f"unknown stream event {event!r}; known events: {known}")
    payload: dict[str, Any] = {"seq": seq, "event": event, "job": job}
    if data is not None:
        payload["data"] = dict(data)
    return payload


def check_envelope(data: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a received envelope (a subscriber's view of the stream).

    Returns the envelope as a plain dict; ``milestone`` events get their
    payload round-tripped through :func:`milestone_from_wire`, so a
    stream validated by this function contains no off-vocabulary kinds.
    """
    if not isinstance(data, Mapping):
        raise WireError(f"stream event must be an object, got {type(data).__name__}")
    event = data.get("event")
    if event not in EVENT_KINDS:
        known = ", ".join(EVENT_KINDS)
        raise WireError(f"unknown stream event {event!r}; known events: {known}")
    seq = data.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise WireError(f"stream seq must be a non-negative integer, got {seq!r}")
    if not isinstance(data.get("job"), str):
        raise WireError("stream event is missing its job key")
    checked = dict(data)
    if event == "milestone":
        checked["data"] = milestone_from_wire(data.get("data", {})).to_dict()
    return checked
