"""The discrete-event scheduler driving every simulation.

A thin, deterministic priority-queue engine: callers schedule callbacks at
absolute times or after delays, and :meth:`Scheduler.run` fires them in
``(time, priority, seq)`` order, advancing the shared :class:`Clock`.
An event budget guards against runaway simulations (a deviating-strategy
bug could otherwise loop forever).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SchedulerError
from repro.sim.clock import Clock
from repro.sim.events import Event, Priority


class Scheduler:
    """Deterministic discrete-event loop."""

    def __init__(self, clock: Clock | None = None, max_events: int = 2_000_000) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: list[Event] = []
        self._seq = 0
        self._fired = 0
        self._max_events = max_events
        self._running = False

    # -- scheduling -------------------------------------------------------------

    def at(
        self,
        when: int,
        action: Callable[[], None],
        priority: int = Priority.WAKE,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute tick ``when``."""
        if when < self.clock.now:
            raise SchedulerError(
                f"cannot schedule {label or 'event'} at {when}, "
                f"clock is already at {self.clock.now}"
            )
        event = Event(time=when, priority=priority, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(
        self,
        delay: int,
        action: Callable[[], None],
        priority: int = Priority.WAKE,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulerError("delay must be non-negative")
        return self.at(self.clock.now + delay, action, priority, label)

    # -- running -----------------------------------------------------------------

    def _fire_next(self) -> Event:
        """Pop, clock-advance, budget-check, and fire the next event.

        The single firing core shared by :meth:`run` and :meth:`step` —
        one implementation is what guarantees a stepped session fires
        the byte-identical event sequence of a wholesale run.
        """
        event = heapq.heappop(self._queue)
        self.clock.advance_to(event.time)
        self._fired += 1
        if self._fired > self._max_events:
            raise SchedulerError(
                f"event budget exceeded ({self._max_events}); "
                "likely a livelock in a party strategy"
            )
        event.fire()
        return event

    def step(self) -> Event | None:
        """Fire exactly the next event; returns it (``None`` when drained).

        Shares the clock, ordering, and event budget with :meth:`run` —
        a run driven step-by-step fires the identical event sequence.
        This is what the execution-session layer uses to pause at
        protocol milestones.
        """
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        if not self._queue:
            return None
        self._running = True
        try:
            return self._fire_next()
        finally:
            self._running = False

    def run(self, horizon: int | None = None) -> int:
        """Fire events in order until the queue drains or ``horizon`` passes.

        Events scheduled exactly at ``horizon`` still fire.  Returns the
        number of events fired.  New events may be scheduled while running.
        """
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        self._running = True
        fired = 0
        queue = self._queue
        heappop = heapq.heappop
        clock = self.clock
        max_events = self._max_events
        try:
            while queue:
                tick = queue[0].time
                if horizon is not None and tick > horizon:
                    break
                # Batched same-tick dispatch: advance the clock once,
                # then drain every event at this tick without re-checking
                # the horizon (same tick, already admitted).  An event
                # fired here may schedule more work at this very tick —
                # it gets a larger seq, heaps after the current entries,
                # and is drained by this same inner loop, so the firing
                # order is byte-identical to the one-pop-per-iteration
                # loop (and to a step()-driven session).
                clock.advance_to(tick)
                while queue and queue[0].time == tick:
                    self._fired += 1
                    if self._fired > max_events:
                        raise SchedulerError(
                            f"event budget exceeded ({max_events}); "
                            "likely a livelock in a party strategy"
                        )
                    heappop(queue).fire()
                    fired += 1
            if horizon is not None and clock.now < horizon and not queue:
                clock.advance_to(horizon)
        finally:
            self._running = False
        return fired

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def cancel_pending(self) -> int:
        """Drop every queued event without firing it; returns the count.

        The clock does not move and already-fired history is untouched —
        this is the primitive :meth:`repro.api.Execution.abort` uses to
        stop a session cleanly between events.  Not callable from inside
        a firing event (the loop holds a popped reference the queue no
        longer knows about).
        """
        if self._running:
            raise SchedulerError("cannot cancel events while the scheduler runs")
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    @property
    def now(self) -> int:
        return self.clock.now
