"""Event types for the discrete-event scheduler.

Events are ordered by ``(time, priority, seq)``: time first, then an
explicit priority band (chain records land before party wake-ups at the
same tick), then the global insertion sequence number — which makes every
simulation a deterministic function of its inputs and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable


class Priority(IntEnum):
    """Tie-break bands for events scheduled at the same tick."""

    CHAIN = 0
    """On-chain effects (publications, calls) land first."""

    WAKE = 1
    """Party observations/reactions happen after chain effects."""

    CONTROL = 2
    """Bookkeeping (horizon checks, trace flushes) runs last."""


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    The ordering tuple is ``(time, priority, seq)``; ``action`` and
    ``label`` are excluded from comparisons.
    """

    time: int
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")

    def fire(self) -> None:
        self.action()
