"""Virtual time.

Time is a non-negative integer tick count; the paper's ``Δ`` is a tick
duration (default :data:`DEFAULT_DELTA`).  Integer time makes deadline
comparisons exact — the protocol's safety argument hinges on strict
inequalities like ``now < start + (diam + |p|) * Δ`` (Fig. 5 line 28), and
floats would blur exactly the boundary cases the benchmarks probe.
"""

from __future__ import annotations

from repro.errors import SimulationError

DEFAULT_DELTA = 1000
"""Default length of the paper's Δ in ticks.

Large enough that fractional conforming reaction times (e.g. ``0.45 * Δ``)
are exactly representable as integers.
"""


class Clock:
    """A monotonically advancing integer clock owned by the scheduler."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError("clock cannot start before time 0")
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance_to(self, when: int) -> None:
        """Move the clock forward (never backward) to ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot move clock backward from {self._now} to {when}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"


def ticks(delta: int, multiple: float) -> int:
    """``multiple * delta`` rounded to an integer tick count.

    Used to express delays like "0.45 Δ"; rounds half up so that a positive
    multiple never silently becomes zero unless it truly is zero.
    """
    if delta <= 0:
        raise SimulationError("delta must be positive")
    if multiple < 0:
        raise SimulationError("delay multiple must be non-negative")
    value = int(multiple * delta + 0.5)
    if multiple > 0 and value == 0:
        value = 1
    return value
