"""Party processes and their timing profiles.

A :class:`Process` is anything that reacts to chain events inside the
simulation.  Its :class:`ReactionProfile` encodes the paper's timing
assumption: ``Δ`` is "enough time for one party to publish a smart contract
... and for the other party to detect the change", i.e. every conforming
observe-then-act round trip fits within ``Δ``.

* ``reaction_delay`` — ticks between a record landing on a chain and the
  party waking up having observed it;
* ``action_delay`` — ticks between the party deciding to act and the
  resulting transaction landing on a chain.

For a conforming party ``reaction_delay + action_delay <= Δ`` must hold;
the default profile uses ``0.45·Δ`` total, strictly below ``Δ/2``, which
keeps the paper's strict timeout check live for every diameter (see
DESIGN.md §2 and bench E20 for the boundary sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.clock import ticks
from repro.sim.events import Priority
from repro.sim.scheduler import Scheduler

DEFAULT_REACTION_FRACTION = 0.25
DEFAULT_ACTION_FRACTION = 0.20


@dataclass(frozen=True)
class ReactionProfile:
    """Observation and action latencies for one party, in ticks."""

    reaction_delay: int
    action_delay: int

    def __post_init__(self) -> None:
        if self.reaction_delay < 0 or self.action_delay < 0:
            raise SimulationError("delays must be non-negative")

    @property
    def round_trip(self) -> int:
        return self.reaction_delay + self.action_delay

    def is_conforming(self, delta: int) -> bool:
        """Whether this profile honours the paper's Δ assumption."""
        return self.round_trip <= delta

    @classmethod
    def conforming(cls, delta: int) -> "ReactionProfile":
        """The default conforming profile (0.45·Δ round trip)."""
        return cls(
            reaction_delay=ticks(delta, DEFAULT_REACTION_FRACTION),
            action_delay=ticks(delta, DEFAULT_ACTION_FRACTION),
        )

    @classmethod
    def fractions(cls, delta: int, reaction: float, action: float) -> "ReactionProfile":
        """A profile from Δ-fractions, e.g. ``fractions(delta, 0.5, 0.5)``."""
        return cls(reaction_delay=ticks(delta, reaction), action_delay=ticks(delta, action))

    @classmethod
    def sluggish(cls, delta: int) -> "ReactionProfile":
        """The slowest still-conforming profile: a full Δ round trip."""
        half = delta // 2
        return cls(reaction_delay=half, action_delay=delta - half)


class Process:
    """Base class for simulated parties and services.

    Subclasses receive the shared scheduler and use :meth:`wake_after` /
    :meth:`act_after` to schedule their own callbacks with the right
    latency semantics.  A halted process never fires queued callbacks.
    """

    def __init__(self, name: str, scheduler: Scheduler, profile: ReactionProfile) -> None:
        self.name = name
        self.scheduler = scheduler
        self.profile = profile
        self._halted = False

    # -- lifecycle ---------------------------------------------------------------

    def halt(self) -> None:
        """Crash the process: every pending and future callback is dropped.

        Models the paper's "if any party halts" failure mode.
        """
        self._halted = True

    @property
    def is_halted(self) -> bool:
        return self._halted

    # -- scheduling helpers --------------------------------------------------------

    def wake_after(self, delay: int, action, label: str = "") -> None:
        """Schedule ``action`` after ``delay`` ticks unless halted by then."""
        self.scheduler.after(
            delay,
            self._guarded(action),
            priority=Priority.WAKE,
            label=label or f"{self.name}:wake",
        )

    def observe_after(self, action, label: str = "") -> None:
        """Schedule ``action`` one reaction delay from now."""
        self.wake_after(self.profile.reaction_delay, action, label or f"{self.name}:observe")

    def _guarded(self, action):
        def run() -> None:
            if not self._halted:
                action()

        return run

    def __repr__(self) -> str:
        status = "halted" if self._halted else "live"
        return f"{type(self).__name__}({self.name!r}, {status})"
