"""The shared simulation harness every protocol runner builds on.

Before this module existed, :class:`repro.core.protocol.SwapSimulation`,
:class:`repro.core.timelocks.SingleLeaderSimulation`, and the three
baselines each re-implemented the same assembly: construct a
:class:`~repro.chain.network.ChainNetwork` with one asset per arc, build
one party process per vertex, subscribe chain records as delayed party
observations, install crash faults, schedule every party's ``start`` at
the protocol starting time, and run the discrete-event scheduler to
quiescence.  :class:`SimulationHarness` owns all of that once, so a
protocol runner is reduced to what actually differs between protocols:
the published spec, the party class, and the contract machinery.

The harness is also where the :mod:`repro.sim.timing` models plug in:
party processes receive per-vertex :class:`ReactionProfile`\\ s from the
scenario's :class:`~repro.sim.timing.TimingModel` instead of one
hard-coded profile, making the paper's Δ assumption a first-class,
sweepable scenario axis.

Typical runner shape::

    harness = SimulationHarness.for_config(digraph, config,
                                           include_broadcast=True)
    parties = harness.build_parties(
        lambda vertex, profile: MyParty(..., profile=profile))
    harness.install_faults(faults)
    harness.wire_observations(broadcast_to_all=True)
    events = harness.run_to_quiescence(spec.start_time)
    result = harness.collect(spec=spec, config=config,
                             conforming=conforming, events_fired=events)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.chain.blockchain import Blockchain
from repro.chain.ledger import Record
from repro.chain.network import BROADCAST_CHAIN_ID, ChainNetwork
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyDirectory, KeyPair
from repro.digraph.digraph import Arc, Digraph, Vertex
from repro.digraph.paths import is_strongly_connected
from repro.errors import NotStronglyConnectedError, SimulationError, TimingError
from repro.sim import trace as tr
from repro.sim.process import Process, ReactionProfile
from repro.sim.scheduler import Scheduler
from repro.sim.timing import TimingModel, resolve_timing
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.assets import Asset
    from repro.sim.faults import FaultPlan


# ---------------------------------------------------------------------------
# deterministic key/secret provisioning (shared by the protocol runners)
# ---------------------------------------------------------------------------


def derive_secret(tag: str, seed: int, name: str) -> bytes:
    """A 32-byte secret deterministic in ``(tag, seed, name)``."""
    return sha256(f"{tag}:{seed}:{name}".encode())


def provision_keypairs(
    scheme: Any, vertices: Iterable[Vertex], seed: int
) -> tuple[KeyDirectory, dict[Vertex, KeyPair]]:
    """One registered keypair per vertex, deterministic in the seed."""
    directory = KeyDirectory()
    keypairs: dict[Vertex, KeyPair] = {}
    for vertex in vertices:
        key_seed = sha256(f"keyseed:{seed}:{vertex}".encode())
        keypair = scheme.keygen(seed=key_seed).renamed(vertex)
        directory.register(keypair)
        keypairs[vertex] = keypair
    return directory, keypairs


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------


class SimulationHarness:
    """Chains, assets, scheduler, trace, timing, wiring, and the run loop.

    One harness builds and runs exactly one simulation.  Construction
    validates the topology and provisions the substrate; the runner then
    calls :meth:`build_parties`, :meth:`install_faults`,
    :meth:`wire_observations`, and finally :meth:`run_to_quiescence` /
    :meth:`collect`.
    """

    def __init__(
        self,
        digraph: Digraph,
        *,
        delta: int,
        reaction_fraction: float,
        action_fraction: float,
        seed: int = 0,
        timing: Any = None,
        chain_delays: Mapping[str, int] | None = None,
        include_broadcast: bool = False,
        asset_values: Mapping[Arc, int] | None = None,
        require_strongly_connected: bool = True,
        connectivity_message: str | None = None,
    ) -> None:
        if require_strongly_connected and not is_strongly_connected(digraph):
            raise NotStronglyConnectedError(
                connectivity_message
                or "swap digraphs must be strongly connected (Theorem 3.5)"
            )
        self.digraph = digraph
        self.delta = delta
        self.seed = seed
        self.reaction_fraction = reaction_fraction
        self.action_fraction = action_fraction
        self.timing: TimingModel = resolve_timing(timing)

        self.network = ChainNetwork.for_digraph(
            digraph, include_broadcast=include_broadcast
        )
        value_of = None
        if asset_values is not None:
            value_of = lambda arc: asset_values.get(arc, 1)  # noqa: E731
        self.assets: dict[Arc, "Asset"] = self.network.register_arc_assets(
            digraph, now=0, value_of=value_of
        )

        self.scheduler = Scheduler()
        self.trace = Trace()

        #: The uniform baseline profile — used for processes that are not
        #: digraph vertices (e.g. the 2PC coordinator).
        self.base_profile = ReactionProfile.fractions(
            delta, reaction_fraction, action_fraction
        )
        self._profiles = self.timing.profiles(
            digraph.vertices,
            delta=delta,
            reaction_fraction=reaction_fraction,
            action_fraction=action_fraction,
            seed=seed,
        )

        #: Per-chain confirmation lag (ticks) added to every observation
        #: of that chain's records — the *chain-side* Δ, as opposed to
        #: the party-side latencies timing models draw.  Keys are arc
        #: labels (``"head->tail"``) or ``"broadcast"``.
        self.chain_delays: dict[str, int] = dict(chain_delays or {})
        self._chain_lag = self._resolve_chain_delays(self.chain_delays)

        self.parties: dict[Vertex, Any] = {}
        self._ran = False

    def _resolve_chain_delays(self, delays: Mapping[str, int]) -> dict[str, int]:
        """Map ``"head->tail"``/``"broadcast"`` keys to chain ids."""
        from repro.chain.network import chain_id_for_arc

        known_arcs = set(self.digraph.arcs)
        lag: dict[str, int] = {}
        for key, delay in delays.items():
            if not isinstance(delay, int) or delay < 0:
                raise SimulationError(
                    f"chain delay for {key!r} must be a non-negative tick "
                    f"count, got {delay!r}"
                )
            if key == BROADCAST_CHAIN_ID:
                lag[BROADCAST_CHAIN_ID] = delay
                continue
            head, sep, tail = key.partition("->")
            if not sep or (head, tail) not in known_arcs:
                raise SimulationError(
                    f"chain delay key {key!r} names no arc of the topology; "
                    f"use 'head->tail' for one of {sorted(known_arcs)} "
                    f"or 'broadcast'"
                )
            lag[chain_id_for_arc((head, tail))] = delay
        return lag

    @classmethod
    def for_config(
        cls, digraph: Digraph, config: Any, **kwargs: Any
    ) -> "SimulationHarness":
        """Build from anything shaped like
        :class:`repro.core.protocol.SwapConfig` (delta, fractions, seed,
        and an optional ``timing`` spec)."""
        return cls(
            digraph,
            delta=config.delta,
            reaction_fraction=config.reaction_fraction,
            action_fraction=config.action_fraction,
            seed=config.seed,
            timing=getattr(config, "timing", None),
            chain_delays=getattr(config, "chain_delays", None),
            **kwargs,
        )

    # -- timing ---------------------------------------------------------------

    def profile_for(self, vertex: Vertex) -> ReactionProfile:
        """The timing model's profile for one party (baseline if the
        vertex is unknown to the model)."""
        return self._profiles.get(vertex, self.base_profile)

    # -- party construction ------------------------------------------------------

    def build_parties(
        self, factory: Callable[[Vertex, ReactionProfile], Any]
    ) -> dict[Vertex, Any]:
        """One party per vertex (in digraph order), profiles applied."""
        for vertex in self.digraph.vertices:
            self.parties[vertex] = factory(vertex, self.profile_for(vertex))
        return self.parties

    # -- fault installation --------------------------------------------------------

    def install_faults(self, faults: "FaultPlan") -> None:
        """Attach crash plans and schedule absolute-time crash events.

        Milestone crashes fire inside the party's own ``_maybe_crash``
        hooks; only ``at_time`` crashes need scheduler events.
        """
        for vertex, crash in faults.crashes.items():
            party = self.parties[vertex]
            party.crash_plan = crash
            if crash.at_time is not None:
                when = crash.at_time

                def crash_now(p: Any = party, t: int = when) -> None:
                    if not p.is_halted:
                        p.halt()
                        self.trace.record(
                            t, tr.PARTY_CRASHED, p.address, at_time=t
                        )

                self.scheduler.at(when, crash_now, label=f"{vertex}:crash")

    # -- observation wiring -----------------------------------------------------------

    def wire_observations(
        self,
        extra_watchers: Iterable[Process] = (),
        broadcast_to_all: bool = False,
    ) -> None:
        """Chain records become delayed observations for relevant parties.

        Each arc's chain notifies the arc's two endpoint parties plus
        every ``extra_watcher`` (e.g. a trusted coordinator);
        ``broadcast_to_all`` additionally routes the broadcast chain to
        every party.  Observation latency is each watcher's own
        ``reaction_delay`` — which is exactly where a timing model's
        per-party draws enter the event loop — plus the chain's
        configured confirmation lag (``chain_delays``): a record on a
        slow chain reaches *every* watcher later, modelling per-chain
        confirmation depth rather than per-party sluggishness.
        """
        extra = list(extra_watchers)
        relevant: dict[str, list[Any]] = {}
        for arc in self.digraph.arcs:
            chain = self.network.chain_for_arc(arc)
            head, tail = arc
            relevant.setdefault(chain.chain_id, []).extend(
                [self.parties[head], self.parties[tail], *extra]
            )
        if broadcast_to_all:
            relevant[BROADCAST_CHAIN_ID] = list(self.parties.values())
        chain_lag = self._chain_lag

        def on_record(chain: Blockchain, record: Record, now: int) -> None:
            lag = chain_lag.get(chain.chain_id, 0)
            for watcher in relevant.get(chain.chain_id, ()):
                if watcher.is_halted:
                    continue
                watcher.wake_after(
                    watcher.profile.reaction_delay + lag,
                    lambda w=watcher, c=chain, r=record, t=now: w.on_chain_record(c, r, t),
                    label=f"{getattr(watcher, 'address', watcher.name)}:observe",
                )

        self.network.subscribe_all(on_record)

    # -- running ------------------------------------------------------------------------

    def begin(self, start_time: int) -> None:
        """Schedule every party's ``start`` at ``start_time`` without
        draining the queue — the execution-session layer then drives the
        scheduler itself (``step()``-wise or wholesale).  One-shot."""
        if self._ran:
            raise SimulationError("a SimulationHarness instance runs once")
        self._ran = True
        for vertex, party in self.parties.items():
            self.scheduler.at(
                start_time,
                lambda p=party: None if p.is_halted else p.start(),
                label=f"{vertex}:start",
            )

    def run_to_quiescence(self, start_time: int) -> int:
        """Schedule every party's ``start`` at ``start_time`` and drain
        the event queue; returns the number of events fired."""
        if self.timing.requires_session:
            raise TimingError(
                f"timing model {self.timing.kind!r} intervenes at protocol "
                "milestones and needs the execution-session API; run the "
                "scenario through Engine.open()/Engine.run() instead of a "
                "direct simulation runner"
            )
        self.begin(start_time)
        return self.scheduler.run()

    # -- metrics ------------------------------------------------------------------------

    def collect(
        self,
        spec: Any,
        config: Any,
        conforming: frozenset[Vertex],
        events_fired: int,
    ):
        """Classify final chain state into a
        :class:`~repro.core.protocol.SwapResult` (Fig. 3 outcomes plus
        the byte/time metrics the complexity theorems count)."""
        from repro.core.protocol import collect_result

        return collect_result(
            spec=spec,
            config=config,
            network=self.network,
            trace=self.trace,
            parties=self.parties,
            conforming=conforming,
            events_fired=events_fired,
        )
