"""Fault injection: crash/halt schedules for simulated parties.

The paper's failure model is halting: "If any party halts while contracts
are being deployed, then all contracts eventually time out and trigger
refunds" (§1).  A :class:`FaultPlan` maps parties to crash triggers —
either an absolute tick or a named protocol milestone — and the runner
applies it.  Richer *deviating* behaviour (publishing wrong contracts,
withholding secrets, colluding) lives in :mod:`repro.core.strategies`;
faults here model parties that simply stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SimulationError


class CrashPoint(Enum):
    """Protocol milestones a crash can be pinned to."""

    AT_START = "at_start"
    """Crash before doing anything at all."""

    AFTER_PHASE_ONE_PUBLISH = "after_phase_one_publish"
    """Crash immediately after publishing the party's outgoing contracts."""

    BEFORE_PHASE_TWO = "before_phase_two"
    """Deploy contracts but never unlock anything (halt between phases)."""

    AFTER_FIRST_UNLOCK = "after_first_unlock"
    """Send exactly one unlock, then halt (partial Phase Two)."""


@dataclass(frozen=True)
class Crash:
    """A single party's crash trigger: a time, a milestone, or both.

    When both are set, whichever fires first wins (the milestone hook
    crashes the party only if it is still alive).
    """

    at_time: int | None = None
    at_point: CrashPoint | None = None

    def __post_init__(self) -> None:
        if self.at_time is None and self.at_point is None:
            raise SimulationError("a Crash needs a time or a milestone")
        if self.at_time is not None and self.at_time < 0:
            raise SimulationError("crash time must be non-negative")


@dataclass
class FaultPlan:
    """Crash assignments for a simulation run."""

    crashes: dict[str, Crash] = field(default_factory=dict)

    def crash(self, party: str, *, at_time: int | None = None, at_point: CrashPoint | None = None) -> "FaultPlan":
        """Add a crash for ``party``; returns self for chaining."""
        self.crashes[party] = Crash(at_time=at_time, at_point=at_point)
        return self

    def crash_for(self, party: str) -> Crash | None:
        return self.crashes.get(party)

    def crashed_parties(self) -> set[str]:
        return set(self.crashes)

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()
