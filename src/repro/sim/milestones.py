"""The protocol-milestone vocabulary and its trace-derived tracker.

The paper's guarantees are phase-structured: Phase One propagates escrow
contracts *against* the arc direction, Phase Two propagates secrets back
*along* it, and every claim — Theorem 4.2's all-``DEAL``, Theorem 4.9's
no-``UNDERWATER``, the strong Nash equilibrium — is really a statement
about what an adversary can do *between* those phases.  This module
names the boundaries so the execution-session layer
(:mod:`repro.api.execution`) can expose them as typed, inspectable
events rather than hiding them inside a black-box run:

``phase1-start``
    The protocol starting time ``T`` was reached; leaders are about to
    publish (§4.2: the swap spec names a start "at least Δ in the
    future").  Emitted once, with no party/arc.

``contract-escrowed``
    One arc's escrow contract landed on its chain (Phase One progress;
    ``party`` is the publisher, ``arc`` the escrowed arc).

``secret-released``
    A leader secret became public: a hashlock was unlocked on some arc's
    chain, or a §4.5 broadcast-chain reveal.  This is the protocol's
    point of no return — once a secret is out, Phase Two deadlines are
    live and a straggler's slowness turns from lateness into damage.

``phase2-complete``
    Every escrowed contract has left escrow (triggered or refunded).
    Emitted once, at the model time of the settling event, only for
    runs that escrowed at least one contract.

``settled``
    The simulation quiesced: no scheduled event remains.  Always the
    final milestone; its time is the final clock reading.

Milestones are *derived* from the :class:`~repro.sim.trace.Trace` — the
tracker never touches simulation state, so observing milestones cannot
perturb a run (the same trace always yields the same milestone
sequence, which is what makes ``Engine.open()`` byte-compatible with
the one-shot ``Engine.run()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError
from repro.sim import trace as tr
from repro.sim.trace import Trace

Arc = tuple[str, str]

PHASE1_START = "phase1-start"
CONTRACT_ESCROWED = "contract-escrowed"
SECRET_RELEASED = "secret-released"
PHASE2_COMPLETE = "phase2-complete"
SETTLED = "settled"

#: The full milestone vocabulary, in canonical phase order.
MILESTONE_KINDS: tuple[str, ...] = (
    PHASE1_START,
    CONTRACT_ESCROWED,
    SECRET_RELEASED,
    PHASE2_COMPLETE,
    SETTLED,
)


def check_milestone_kind(kind: str) -> str:
    """Validate one milestone-kind name; returns it for chaining."""
    if kind not in MILESTONE_KINDS:
        known = ", ".join(MILESTONE_KINDS)
        raise SimulationError(
            f"unknown milestone kind {kind!r}; the vocabulary is: {known}"
        )
    return kind


@dataclass(frozen=True)
class Milestone:
    """One typed protocol event observed during an execution session.

    ``index`` is the position in the session's milestone sequence (dense,
    starting at 0); ``time`` is model time (ticks).  ``party``/``arc``
    are ``None`` for run-level milestones (``phase1-start``,
    ``phase2-complete``, ``settled``, and broadcast secret reveals).
    """

    index: int
    time: int
    kind: str
    party: str | None = None
    arc: Arc | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "kind": self.kind,
            "party": self.party,
            "arc": list(self.arc) if self.arc is not None else None,
        }


#: trace kinds that settle an escrowed arc (Phase Two resolution).
_SETTLING_KINDS = frozenset({tr.ARC_TRIGGERED, tr.ARC_REFUNDED})
#: trace kinds that reveal a leader secret.
_RELEASE_KINDS = frozenset({tr.HASHLOCK_UNLOCKED, tr.SECRET_BROADCAST})


class MilestoneTracker:
    """Incrementally translates a :class:`Trace` into milestones.

    The tracker keeps a cursor into the (append-only) trace, so it can
    be polled after every scheduler event — the execution session's
    stepping mode — or exactly once after a full run; both yield the
    identical milestone sequence.
    """

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._cursor = 0
        self._milestones: list[Milestone] = []
        self._counts: dict[str, int] = {}
        self._escrowed: set[Arc] = set()
        self._resolved: set[Arc] = set()
        self._phase2_complete = False
        self._started = False
        self._finished = False

    # -- emission ------------------------------------------------------------

    @property
    def milestones(self) -> tuple[Milestone, ...]:
        return tuple(self._milestones)

    def counts(self) -> dict[str, int]:
        """Milestone occurrences by kind (kinds never seen are absent)."""
        return dict(self._counts)

    def _emit(
        self, time: int, kind: str, party: str | None = None, arc: Arc | None = None
    ) -> Milestone:
        milestone = Milestone(
            index=len(self._milestones), time=time, kind=kind, party=party, arc=arc
        )
        self._milestones.append(milestone)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return milestone

    # -- lifecycle -----------------------------------------------------------

    def start(self, start_time: int) -> list[Milestone]:
        """Emit ``phase1-start``; call once when the session begins."""
        if self._started:
            raise SimulationError("milestone tracker already started")
        self._started = True
        return [self._emit(start_time, PHASE1_START)]

    def poll(self) -> list[Milestone]:
        """Translate trace entries appended since the last poll.

        Reads the trace's columns directly (:meth:`Trace.columns_since`)
        — the per-step polling loop materialises no event objects.
        """
        times, kinds, parties, details = self._trace.columns_since(self._cursor)
        self._cursor += len(times)
        fresh: list[Milestone] = []
        for time, kind, party, detail in zip(times, kinds, parties, details):
            value = detail.get("arc")
            arc: Arc | None = (value[0], value[1]) if value is not None else None
            if kind == tr.CONTRACT_PUBLISHED and arc is not None:
                self._escrowed.add(arc)
                fresh.append(self._emit(time, CONTRACT_ESCROWED, party, arc))
            elif kind in _RELEASE_KINDS:
                fresh.append(self._emit(time, SECRET_RELEASED, party, arc))
            elif kind in _SETTLING_KINDS and arc is not None:
                self._resolved.add(arc)
                if (
                    not self._phase2_complete
                    and self._escrowed
                    and self._escrowed <= self._resolved
                ):
                    self._phase2_complete = True
                    fresh.append(self._emit(time, PHASE2_COMPLETE))
        return fresh

    def finish(self, now: int) -> list[Milestone]:
        """Emit the terminal ``settled`` milestone (idempotent)."""
        if self._finished:
            return []
        self._finished = True
        fresh = self.poll()
        fresh.append(self._emit(now, SETTLED))
        return fresh
