"""Discrete-event simulation substrate with the paper's Δ timing model.

Timing is pluggable: :mod:`repro.sim.timing` defines the
``uniform``/``jittered``/``stragglers`` models and
:mod:`repro.sim.harness` holds the shared simulation assembly every
protocol runner builds on.
"""

from repro.sim.clock import DEFAULT_DELTA, Clock, ticks
from repro.sim.events import Event, Priority
from repro.sim.faults import Crash, CrashPoint, FaultPlan
from repro.sim.harness import (
    SimulationHarness,
    derive_secret,
    provision_keypairs,
)
from repro.sim.process import (
    DEFAULT_ACTION_FRACTION,
    DEFAULT_REACTION_FRACTION,
    Process,
    ReactionProfile,
)
from repro.sim.scheduler import Scheduler
from repro.sim.timing import (
    DEFAULT_TIMING_KIND,
    TIMING_KINDS,
    JitteredTiming,
    StragglerTiming,
    TimingModel,
    UniformTiming,
    is_default_timing,
    register_timing_kind,
    resolve_timing,
    timing_to_dict,
)
from repro.sim.trace import (
    ARC_REFUNDED,
    ARC_TRIGGERED,
    CONTRACT_PUBLISHED,
    CONTRACT_REJECTED,
    HASHLOCK_UNLOCKED,
    PARTY_CRASHED,
    PHASE_STARTED,
    PROTOCOL_ABANDONED,
    SECRET_BROADCAST,
    Trace,
    TraceEvent,
)

__all__ = [
    "DEFAULT_DELTA",
    "Clock",
    "ticks",
    "Event",
    "Priority",
    "Crash",
    "CrashPoint",
    "FaultPlan",
    "SimulationHarness",
    "derive_secret",
    "provision_keypairs",
    "DEFAULT_TIMING_KIND",
    "TIMING_KINDS",
    "JitteredTiming",
    "StragglerTiming",
    "TimingModel",
    "UniformTiming",
    "is_default_timing",
    "register_timing_kind",
    "resolve_timing",
    "timing_to_dict",
    "DEFAULT_ACTION_FRACTION",
    "DEFAULT_REACTION_FRACTION",
    "Process",
    "ReactionProfile",
    "Scheduler",
    "ARC_REFUNDED",
    "ARC_TRIGGERED",
    "CONTRACT_PUBLISHED",
    "CONTRACT_REJECTED",
    "HASHLOCK_UNLOCKED",
    "PARTY_CRASHED",
    "PHASE_STARTED",
    "PROTOCOL_ABANDONED",
    "SECRET_BROADCAST",
    "Trace",
    "TraceEvent",
]
