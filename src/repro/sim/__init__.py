"""Discrete-event simulation substrate with the paper's Δ timing model."""

from repro.sim.clock import DEFAULT_DELTA, Clock, ticks
from repro.sim.events import Event, Priority
from repro.sim.faults import Crash, CrashPoint, FaultPlan
from repro.sim.process import (
    DEFAULT_ACTION_FRACTION,
    DEFAULT_REACTION_FRACTION,
    Process,
    ReactionProfile,
)
from repro.sim.scheduler import Scheduler
from repro.sim.trace import (
    ARC_REFUNDED,
    ARC_TRIGGERED,
    CONTRACT_PUBLISHED,
    CONTRACT_REJECTED,
    HASHLOCK_UNLOCKED,
    PARTY_CRASHED,
    PHASE_STARTED,
    PROTOCOL_ABANDONED,
    SECRET_BROADCAST,
    Trace,
    TraceEvent,
)

__all__ = [
    "DEFAULT_DELTA",
    "Clock",
    "ticks",
    "Event",
    "Priority",
    "Crash",
    "CrashPoint",
    "FaultPlan",
    "DEFAULT_ACTION_FRACTION",
    "DEFAULT_REACTION_FRACTION",
    "Process",
    "ReactionProfile",
    "Scheduler",
    "ARC_REFUNDED",
    "ARC_TRIGGERED",
    "CONTRACT_PUBLISHED",
    "CONTRACT_REJECTED",
    "HASHLOCK_UNLOCKED",
    "PARTY_CRASHED",
    "PHASE_STARTED",
    "PROTOCOL_ABANDONED",
    "SECRET_BROADCAST",
    "Trace",
    "TraceEvent",
]
