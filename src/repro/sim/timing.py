"""Pluggable timing models: how party latencies relate to the paper's Δ.

The paper's entire safety argument hangs on one timing assumption: Δ is
"enough time for one party to publish a smart contract ... and for the
other party to detect the change", i.e. every conforming party's
``reaction_delay + action_delay`` fits within Δ.  A :class:`TimingModel`
makes that assumption an explicit, swappable axis of a simulation
instead of a hard-coded constant:

``uniform``
    Every party gets the same deterministic
    :class:`~repro.sim.process.ReactionProfile` (the historical
    behaviour, and the default).  Conforming by construction.

``jittered``
    Each party draws its own reaction/action delays from a seeded
    per-party RNG, *within* the conforming Δ budget (round trip ≤ Δ).
    Theorem 4.9's guarantee must survive any such draw — jittered
    sweeps probe that claim empirically.

``stragglers``
    A chosen (or seeded) subset of parties violates the Δ assumption:
    their round trip is ``violation × Δ > Δ``.  This is the regime the
    theorems do *not* cover; sweeping it locates where the all-Deal and
    no-Underwater guarantees actually break once parties are slower
    than the protocol's deadlines assume.

``adaptive-stragglers``
    The same seeded victims as ``stragglers``, but conforming until the
    protocol milestone named by ``at`` (default ``secret-released``)
    and then spending the same time-integrated violation budget all at
    once — a milestone *intervention* registered through the
    execution-session API (:meth:`TimingModel.install`), so this model
    only runs under ``Engine.open``/``Engine.run``.

Models serialize to plain dicts (``{"kind": ..., **params}``) so they
can ride inside a :class:`repro.api.Scenario`, participate in run-key
hashing, and cross process boundaries.  Everything is deterministic in
``(seed, model params, vertex name)`` — two runs of the same scenario
draw identical profiles.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from random import Random
from typing import Any, Iterable, Mapping, Sequence

from repro.crypto.hashing import sha256
from repro.errors import TimingError
from repro.sim.clock import ticks
from repro.sim.milestones import MILESTONE_KINDS, SECRET_RELEASED, SETTLED
from repro.sim.process import ReactionProfile

#: The timing kind applied when a scenario does not name one.
DEFAULT_TIMING_KIND = "uniform"


def _sub_seed(seed: int, *parts: str) -> int:
    """A stable 63-bit sub-seed for one (seed, label...) combination."""
    digest = sha256((f"timing:{seed}:" + ":".join(parts)).encode())
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class TimingModel(ABC):
    """One named rule assigning a :class:`ReactionProfile` per party."""

    #: Registry key; subclasses must override.
    kind: str = ""

    #: Whether the model intervenes mid-run (at protocol milestones) and
    #: therefore only runs under the execution-session API
    #: (:meth:`repro.api.Engine.open`); static models leave this False.
    requires_session: bool = False

    def install(self, execution: Any) -> None:
        """Session hook: register probes/interventions on an
        :class:`repro.api.execution.Execution` before it starts.

        Called once by the execution session for every run.  Static
        models (everything whose behaviour is fully described by
        :meth:`profiles`) do nothing here; adaptive models register
        milestone interventions that mutate party profiles mid-run.
        """

    @abstractmethod
    def profiles(
        self,
        vertices: Iterable[str],
        *,
        delta: int,
        reaction_fraction: float,
        action_fraction: float,
        seed: int,
    ) -> dict[str, ReactionProfile]:
        """Deterministic per-party profiles for one simulation run.

        ``reaction_fraction``/``action_fraction`` are the configured
        baseline latencies (the profile every party gets under
        ``uniform``); models may use, perturb, or ignore them.
        """

    def params(self) -> dict[str, Any]:
        """The model's JSON-compatible parameters (defaults included)."""
        return {}

    def to_dict(self) -> dict[str, Any]:
        """The canonical serialized form: ``{"kind": ..., **params}``."""
        return {"kind": self.kind, **self.params()}

    def is_default(self) -> bool:
        """Whether this model is the back-compat default (uniform)."""
        return self.kind == DEFAULT_TIMING_KIND

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TimingModel) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        # params() may hold lists (e.g. pinned straggler parties), so
        # hash the canonical JSON encoding rather than the raw values.
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"


class UniformTiming(TimingModel):
    """Every party reacts and acts with the same configured latencies.

    This is exactly the pre-timing-model behaviour: one
    ``ReactionProfile.fractions(delta, reaction, action)`` shared by
    all parties, conforming as long as the configured fractions sum to
    at most 1.
    """

    kind = "uniform"

    def profiles(
        self,
        vertices: Iterable[str],
        *,
        delta: int,
        reaction_fraction: float,
        action_fraction: float,
        seed: int,
    ) -> dict[str, ReactionProfile]:
        profile = ReactionProfile.fractions(
            delta, reaction_fraction, action_fraction
        )
        return {vertex: profile for vertex in vertices}


class JitteredTiming(TimingModel):
    """Per-party seeded latencies drawn within the conforming Δ budget.

    Each party's round trip is drawn uniformly from
    ``[max(1, min_fraction·Δ), Δ]`` and split at a random point into
    reaction and action delays.  Every draw satisfies
    ``reaction + action ≤ Δ``, so jittered parties are still conforming
    in the paper's sense — the theorems must hold for any draw.
    """

    kind = "jittered"

    def __init__(self, min_fraction: float = 0.05) -> None:
        if not 0.0 <= min_fraction <= 1.0:
            raise TimingError(
                f"jittered min_fraction must be within [0, 1], got {min_fraction}"
            )
        self.min_fraction = float(min_fraction)

    def params(self) -> dict[str, Any]:
        return {"min_fraction": self.min_fraction}

    def profiles(
        self,
        vertices: Iterable[str],
        *,
        delta: int,
        reaction_fraction: float,
        action_fraction: float,
        seed: int,
    ) -> dict[str, ReactionProfile]:
        floor = max(1, ticks(delta, self.min_fraction)) if self.min_fraction else 1
        floor = min(floor, delta)
        out: dict[str, ReactionProfile] = {}
        for vertex in vertices:
            rng = Random(_sub_seed(seed, self.kind, str(vertex)))
            round_trip = rng.randint(floor, delta)
            reaction = rng.randint(0, round_trip)
            out[vertex] = ReactionProfile(
                reaction_delay=reaction, action_delay=round_trip - reaction
            )
        return out


class StragglerTiming(TimingModel):
    """A subset of parties violates ``reaction + action ≤ Δ``.

    ``parties`` pins the stragglers explicitly; otherwise ``count``
    parties are chosen deterministically from the seed (clamped to the
    party count).  Stragglers get a round trip of ``violation × Δ``
    (which must exceed Δ — that is the point); everyone else keeps the
    uniform baseline profile.  Sweeping ``violation`` empirically maps
    where Theorem 4.9's guarantee stops holding once its timing
    premise is broken.
    """

    kind = "stragglers"

    def __init__(
        self,
        count: int = 1,
        violation: float = 3.0,
        parties: Sequence[str] | None = None,
    ) -> None:
        if count < 1:
            raise TimingError(f"stragglers count must be >= 1, got {count}")
        if violation <= 1.0:
            raise TimingError(
                "stragglers violation must exceed 1.0 (a round trip within "
                f"Δ does not violate the assumption), got {violation}"
            )
        self.count = int(count)
        self.violation = float(violation)
        self.parties = tuple(parties) if parties else None

    def params(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "violation": self.violation,
            "parties": list(self.parties) if self.parties else None,
        }

    def straggler_set(self, vertices: Iterable[str], seed: int) -> frozenset[str]:
        """Which parties violate Δ for this (vertices, seed) pair.

        Seeded under the base ``"stragglers"`` label for *every*
        subclass, so the static and adaptive models pick the same
        victims at the same seed — head-to-head comparisons vary only
        *when* the budget is spent, never *who* spends it.
        """
        pool = sorted(vertices)
        if self.parties is not None:
            unknown = [p for p in self.parties if p not in set(pool)]
            if unknown:
                raise TimingError(
                    f"stragglers name unknown parties {unknown}; "
                    f"topology has {pool}"
                )
            return frozenset(self.parties)
        rng = Random(_sub_seed(seed, StragglerTiming.kind))
        return frozenset(rng.sample(pool, min(self.count, len(pool))))

    def slow_profile(self, delta: int) -> ReactionProfile:
        """The violating profile: a ``violation × Δ`` round trip, split
        evenly between reaction and action."""
        round_trip = max(delta + 1, ticks(delta, self.violation))
        return ReactionProfile(
            reaction_delay=round_trip // 2,
            action_delay=round_trip - round_trip // 2,
        )

    def profiles(
        self,
        vertices: Iterable[str],
        *,
        delta: int,
        reaction_fraction: float,
        action_fraction: float,
        seed: int,
    ) -> dict[str, ReactionProfile]:
        vertices = list(vertices)
        stragglers = self.straggler_set(vertices, seed)
        base = ReactionProfile.fractions(
            delta, reaction_fraction, action_fraction
        )
        slow = self.slow_profile(delta)
        return {
            vertex: slow if vertex in stragglers else base
            for vertex in vertices
        }


class AdaptiveStragglerTiming(StragglerTiming):
    """Stragglers that conform until a protocol milestone, then violate.

    The same seeded straggler choice as :class:`StragglerTiming`, but
    the chosen parties start with the *uniform conforming* profile and
    only adopt a violating one when the milestone named by ``at``
    (default ``secret-released``; see :mod:`repro.sim.milestones`)
    first fires — the adversary behaves impeccably through Phase One,
    lets every contract get escrowed, and goes slow exactly when the
    secrets start to flow and the Δ-gapped relay deadlines are live.

    ``violation`` is the same *time-integrated budget* as the static
    model's: a static straggler spends ``(violation−1)·Δ`` of excess
    latency on every interaction across both phases, so the adaptive
    straggler — active for only the post-trigger half of the run —
    concentrates a doubled per-step excess (round trip
    ``base + 2·(violation−1)·Δ``-ish) into the window where it does
    damage.  Holding the budget fixed is what makes the comparison
    meaningful: same total slowness, different placement.

    Requires the execution-session API (``Engine.open``/``run``): the
    profile swap is a registered milestone intervention, so a direct
    ``run_to_quiescence`` refuses this model rather than silently
    running it as uniform.
    """

    kind = "adaptive-stragglers"
    requires_session = True

    def __init__(
        self,
        count: int = 1,
        violation: float = 3.0,
        parties: Sequence[str] | None = None,
        at: str = SECRET_RELEASED,
    ) -> None:
        super().__init__(count=count, violation=violation, parties=parties)
        if at not in MILESTONE_KINDS or at == SETTLED:
            usable = ", ".join(k for k in MILESTONE_KINDS if k != SETTLED)
            raise TimingError(
                f"adaptive-stragglers cannot trigger at {at!r}; "
                f"usable milestones: {usable}"
            )
        self.at = str(at)

    def params(self) -> dict[str, Any]:
        return {**super().params(), "at": self.at}

    def adaptive_profile(self, delta: int, base: ReactionProfile) -> ReactionProfile:
        """The post-trigger profile: the static model's excess over the
        *configured* baseline, doubled (same budget, spent in one
        phase).  ``install()`` computes it from the harness's actual
        base profile, so non-default reaction/action fractions are
        honoured — there is deliberately no base-free accessor that
        could disagree with what the intervention installs."""
        static_round_trip = max(delta + 1, ticks(delta, self.violation))
        excess = max(1, static_round_trip - base.round_trip)
        round_trip = base.round_trip + 2 * excess
        return ReactionProfile(
            reaction_delay=round_trip // 2,
            action_delay=round_trip - round_trip // 2,
        )

    def profiles(
        self,
        vertices: Iterable[str],
        *,
        delta: int,
        reaction_fraction: float,
        action_fraction: float,
        seed: int,
    ) -> dict[str, ReactionProfile]:
        # Conforming until the trigger: everyone starts on the uniform
        # baseline; the install()ed intervention swaps the stragglers'
        # profiles mid-run.
        profile = ReactionProfile.fractions(
            delta, reaction_fraction, action_fraction
        )
        return {vertex: profile for vertex in vertices}

    def install(self, execution: Any) -> None:
        harness = execution.harness
        stragglers = self.straggler_set(harness.digraph.vertices, harness.seed)
        slow = self.adaptive_profile(harness.delta, harness.base_profile)

        def turn_stragglers(execution: Any, milestone: Any) -> None:
            for vertex in stragglers:
                party = harness.parties.get(vertex)
                if party is not None and not party.is_halted:
                    party.profile = slow

        execution.intervene(self.at, turn_stragglers, once=True)


#: kind -> model class; third parties may register their own.
TIMING_KINDS: dict[str, type[TimingModel]] = {
    UniformTiming.kind: UniformTiming,
    JitteredTiming.kind: JitteredTiming,
    StragglerTiming.kind: StragglerTiming,
    AdaptiveStragglerTiming.kind: AdaptiveStragglerTiming,
}


def register_timing_kind(
    model_class: type[TimingModel], replace: bool = False
) -> type[TimingModel]:
    """Add a :class:`TimingModel` subclass to the kind registry."""
    if not model_class.kind:
        raise TimingError(f"{model_class.__name__} has no kind")
    if model_class.kind in TIMING_KINDS and not replace:
        raise TimingError(
            f"timing kind {model_class.kind!r} is already registered"
        )
    TIMING_KINDS[model_class.kind] = model_class
    return model_class


def resolve_timing(spec: Any) -> TimingModel:
    """Coerce any accepted timing spec into a :class:`TimingModel`.

    Accepts ``None`` (the uniform default), a kind name, a
    ``{"kind": ..., **params}`` dict, or an existing model instance.
    Raises :class:`~repro.errors.TimingError` on unknown kinds or
    parameters, so a scenario that constructs is a scenario every
    engine can honour.
    """
    if spec is None:
        return UniformTiming()
    if isinstance(spec, TimingModel):
        return spec
    if isinstance(spec, str):
        kind, params = spec, {}
    elif isinstance(spec, Mapping):
        params = {str(k): v for k, v in spec.items()}
        kind = params.pop("kind", None)
        if not isinstance(kind, str):
            raise TimingError(
                f"timing dict needs a 'kind' name; got {dict(spec)!r}"
            )
        # A serialized default (parties=None) round-trips cleanly.
        params = {k: v for k, v in params.items() if v is not None}
    else:
        raise TimingError(
            "timing must be None, a kind name, a dict, or a TimingModel; "
            f"got {type(spec).__name__}"
        )
    try:
        model_class = TIMING_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(TIMING_KINDS))
        raise TimingError(
            f"unknown timing kind {kind!r}; registered kinds: {known}"
        ) from None
    try:
        return model_class(**params)
    except TypeError:
        raise TimingError(
            f"timing kind {kind!r} does not accept params "
            f"{sorted(params)}; see {model_class.__name__}"
        ) from None


def timing_to_dict(spec: Any) -> dict[str, Any] | None:
    """Normalise a timing spec to its canonical dict (``None`` stays
    ``None`` — the back-compat "field omitted" form)."""
    if spec is None:
        return None
    return resolve_timing(spec).to_dict()


def is_default_timing(spec: Any) -> bool:
    """True when ``spec`` means "the historical uniform behaviour".

    Scenarios drop default timing from their canonical (hashed) form so
    pre-timing-model run stores stay warm.
    """
    return spec is None or resolve_timing(spec).is_default()
