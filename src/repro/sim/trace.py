"""Execution traces and metrics.

Every simulation collects a :class:`Trace`: a time-ordered event log
covering contract publications, hashlock unlocks, claims, refunds,
crashes, and protocol-phase transitions.  The benchmark harness derives
all of its reported series from traces:

* the Figure 1/2 timeline (publication and trigger times per arc);
* Theorem 4.7's completion time, compared with ``2·diam(D)·Δ``;
* Theorem 4.10's stored bytes and the ``O(|A|·|L|)`` published bytes;
* per-party outcome classification inputs (which arcs were triggered).

Storage is *columnar*: the log is four parallel arrays (times, kinds,
parties, details) rather than a list of event objects.  Recording — the
simulator's hottest append path, hit once per trace-worthy occurrence —
is four plain ``list.append`` calls with no object construction; the
:class:`TraceEvent` view objects are materialised lazily, only for
consumers that ask for them (:meth:`Trace.events`, iteration).  Bulk
consumers — the milestone tracker's per-step poll, the per-arc timing
queries — read the columns directly and never build an event object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.digraph.digraph import Arc


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence inside a simulation.

    A *view* over one row of the columnar :class:`Trace` — built on
    demand, not stored; two reads of the same row yield equal (but not
    identical) events.
    """

    time: int
    kind: str
    party: str
    details: dict[str, Any] = field(default_factory=dict)

    def arc(self) -> Arc | None:
        """The arc this event concerns, if any."""
        value = self.details.get("arc")
        if value is None:
            return None
        head, tail = value
        return (head, tail)


def _arc_of(details: dict[str, Any]) -> Arc | None:
    """The arc in one details column entry, if any (no event object)."""
    value = details.get("arc")
    if value is None:
        return None
    head, tail = value
    return (head, tail)


class Trace:
    """An append-only, time-ordered event log for one simulation run.

    Rows live in four parallel arrays; :meth:`record` appends one row.
    The arrays are internal — consumers go through the query methods
    (columnar, no materialisation) or :meth:`events`/iteration (lazy
    :class:`TraceEvent` views).
    """

    __slots__ = ("_times", "_kinds", "_parties", "_details")

    def __init__(self) -> None:
        self._times: list[int] = []
        self._kinds: list[str] = []
        self._parties: list[str] = []
        self._details: list[dict[str, Any]] = []

    def record(self, time: int, kind: str, party: str, **details: Any) -> None:
        """Append one row.  Returns nothing — the hot path constructs no
        event object; use :meth:`events` for materialised views."""
        self._times.append(time)
        self._kinds.append(kind)
        self._parties.append(party)
        self._details.append(details)

    def _row(self, i: int) -> TraceEvent:
        return TraceEvent(
            time=self._times[i],
            kind=self._kinds[i],
            party=self._parties[i],
            details=self._details[i],
        )

    # -- queries -----------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        if kind is None:
            return [self._row(i) for i in range(len(self._times))]
        return [self._row(i) for i, k in enumerate(self._kinds) if k == kind]

    def events_since(self, index: int) -> list[TraceEvent]:
        """Events appended at or after position ``index``.

        Cost proportional to the *new* events, so incremental consumers
        stay linear overall; prefer :meth:`columns_since` where the
        event objects themselves are not needed.
        """
        return [self._row(i) for i in range(index, len(self._times))]

    def columns_since(
        self, index: int
    ) -> tuple[Sequence[int], Sequence[str], Sequence[str], Sequence[dict[str, Any]]]:
        """The ``(times, kinds, parties, details)`` columns from position
        ``index`` on — the zero-materialisation tail read the milestone
        tracker polls after every scheduler event."""
        return (
            self._times[index:],
            self._kinds[index:],
            self._parties[index:],
            self._details[index:],
        )

    def first(self, kind: str, **match: Any) -> TraceEvent | None:
        for i, k in enumerate(self._kinds):
            if k != kind:
                continue
            details = self._details[i]
            if all(details.get(key) == value for key, value in match.items()):
                return self._row(i)
        return None

    def last_time(self, kind: str | None = None) -> int | None:
        if kind is None:
            times = self._times
        else:
            times = [t for t, k in zip(self._times, self._kinds) if k == kind]
        if not times:
            return None
        return max(times)

    def times_by_arc(self, kind: str) -> dict[Arc, int]:
        """Earliest time each arc saw an event of ``kind``."""
        out: dict[Arc, int] = {}
        for i, k in enumerate(self._kinds):
            if k != kind:
                continue
            arc = _arc_of(self._details[i])
            if arc is None:
                continue
            time = self._times[i]
            if arc not in out or time < out[arc]:
                out[arc] = time
        return out

    def count(self, kind: str) -> int:
        return self._kinds.count(kind)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    # -- rendering -----------------------------------------------------------------

    def format_timeline(self, delta: int | None = None, kinds: Iterable[str] | None = None) -> str:
        """A human-readable timeline, optionally restricted to ``kinds``.

        With ``delta`` given, times are also shown as Δ-multiples — the
        units Figures 1 and 2 use.
        """
        wanted = set(kinds) if kinds is not None else None
        lines = []
        for event in self.events():
            if wanted is not None and event.kind not in wanted:
                continue
            stamp = f"t={event.time}"
            if delta:
                stamp += f" ({event.time / delta:.2f}Δ)"
            arc = event.arc()
            where = f" arc={arc[0]}->{arc[1]}" if arc else ""
            extras = {
                k: v for k, v in event.details.items() if k not in {"arc"}
            }
            extra_text = f" {extras}" if extras else ""
            lines.append(f"{stamp:<22} {event.kind:<22} {event.party:<10}{where}{extra_text}")
        return "\n".join(lines)


# Canonical trace event kinds, so tests/benches don't scatter string literals.
CONTRACT_PUBLISHED = "contract_published"
CONTRACT_REJECTED = "contract_rejected"
HASHLOCK_UNLOCKED = "hashlock_unlocked"
ARC_TRIGGERED = "arc_triggered"
ARC_REFUNDED = "arc_refunded"
SECRET_BROADCAST = "secret_broadcast"
PARTY_CRASHED = "party_crashed"
PHASE_STARTED = "phase_started"
PROTOCOL_ABANDONED = "protocol_abandoned"
