"""Execution traces and metrics.

Every simulation collects a :class:`Trace`: a time-ordered list of
:class:`TraceEvent` entries covering contract publications, hashlock
unlocks, claims, refunds, crashes, and protocol-phase transitions.  The
benchmark harness derives all of its reported series from traces:

* the Figure 1/2 timeline (publication and trigger times per arc);
* Theorem 4.7's completion time, compared with ``2·diam(D)·Δ``;
* Theorem 4.10's stored bytes and the ``O(|A|·|L|)`` published bytes;
* per-party outcome classification inputs (which arcs were triggered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.digraph.digraph import Arc


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence inside a simulation."""

    time: int
    kind: str
    party: str
    details: dict[str, Any] = field(default_factory=dict)

    def arc(self) -> Arc | None:
        """The arc this event concerns, if any."""
        value = self.details.get("arc")
        if value is None:
            return None
        head, tail = value
        return (head, tail)


class Trace:
    """An append-only, time-ordered event log for one simulation run."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, time: int, kind: str, party: str, **details: Any) -> TraceEvent:
        event = TraceEvent(time=time, kind=kind, party=party, details=details)
        self._events.append(event)
        return event

    # -- queries -----------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def events_since(self, index: int) -> list[TraceEvent]:
        """Events appended at or after position ``index``.

        A tail slice (cost proportional to the *new* events), so
        incremental consumers — the milestone tracker polls after every
        scheduler event — stay linear overall instead of re-copying the
        whole log each time.
        """
        return self._events[index:]

    def first(self, kind: str, **match: Any) -> TraceEvent | None:
        for event in self._events:
            if event.kind != kind:
                continue
            if all(event.details.get(k) == v for k, v in match.items()):
                return event
        return None

    def last_time(self, kind: str | None = None) -> int | None:
        events = self.events(kind)
        if not events:
            return None
        return max(e.time for e in events)

    def times_by_arc(self, kind: str) -> dict[Arc, int]:
        """Earliest time each arc saw an event of ``kind``."""
        out: dict[Arc, int] = {}
        for event in self._events:
            if event.kind != kind:
                continue
            arc = event.arc()
            if arc is None:
                continue
            if arc not in out or event.time < out[arc]:
                out[arc] = event.time
        return out

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # -- rendering -----------------------------------------------------------------

    def format_timeline(self, delta: int | None = None, kinds: Iterable[str] | None = None) -> str:
        """A human-readable timeline, optionally restricted to ``kinds``.

        With ``delta`` given, times are also shown as Δ-multiples — the
        units Figures 1 and 2 use.
        """
        wanted = set(kinds) if kinds is not None else None
        lines = []
        for event in self._events:
            if wanted is not None and event.kind not in wanted:
                continue
            stamp = f"t={event.time}"
            if delta:
                stamp += f" ({event.time / delta:.2f}Δ)"
            arc = event.arc()
            where = f" arc={arc[0]}->{arc[1]}" if arc else ""
            extras = {
                k: v for k, v in event.details.items() if k not in {"arc"}
            }
            extra_text = f" {extras}" if extras else ""
            lines.append(f"{stamp:<22} {event.kind:<22} {event.party:<10}{where}{extra_text}")
        return "\n".join(lines)


# Canonical trace event kinds, so tests/benches don't scatter string literals.
CONTRACT_PUBLISHED = "contract_published"
CONTRACT_REJECTED = "contract_rejected"
HASHLOCK_UNLOCKED = "hashlock_unlocked"
ARC_TRIGGERED = "arc_triggered"
ARC_REFUNDED = "arc_refunded"
SECRET_BROADCAST = "secret_broadcast"
PARTY_CRASHED = "party_crashed"
PHASE_STARTED = "phase_started"
PROTOCOL_ABANDONED = "protocol_abandoned"
